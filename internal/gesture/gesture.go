// Package gesture implements gestural query specification in the spirit of
// dbTouch [32,44] and GestureDB [45,47]: a stream of touch events over a
// rendered table — taps on columns, range swipes, pinches, holds, flicks —
// is incrementally compiled by a small state machine into a relational
// query, so data can be explored without writing SQL (or owning a
// keyboard). The experiments replay scripted gesture traces and check that
// the synthesized queries match the intended ones.
package gesture

import (
	"errors"
	"fmt"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
)

// Package-level sentinel errors.
var (
	ErrUnknownColumn = errors.New("gesture: unknown column")
	ErrBadGesture    = errors.New("gesture: gesture not applicable")
	ErrEmptyQuery    = errors.New("gesture: no query built yet")
)

// Kind enumerates the recognized gestures.
type Kind uint8

// Gestures.
const (
	// Tap selects a column for output.
	Tap Kind = iota
	// SwipeRange selects a value range on a column (filter).
	SwipeRange
	// Hold groups by a column.
	Hold
	// Pinch aggregates a column (pinch-in = SUM by convention; the Agg
	// field picks the function).
	Pinch
	// FlickUp sorts ascending by a column; FlickDown descending.
	FlickUp
	FlickDown
	// DoubleTap clears the query canvas.
	DoubleTap
)

// String names the gesture.
func (k Kind) String() string {
	switch k {
	case Tap:
		return "tap"
	case SwipeRange:
		return "swipe-range"
	case Hold:
		return "hold"
	case Pinch:
		return "pinch"
	case FlickUp:
		return "flick-up"
	case FlickDown:
		return "flick-down"
	case DoubleTap:
		return "double-tap"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one touch event over the rendered table.
type Event struct {
	Kind   Kind
	Column string
	// Lo/Hi carry the swiped value range for SwipeRange.
	Lo, Hi float64
	// Agg selects the aggregate for Pinch (default SUM).
	Agg exec.AggFunc
}

// Trace is a scripted sequence of gestures.
type Trace []Event

// Machine incrementally compiles gestures into a query.
type Machine struct {
	schema  storage.Schema
	selects []exec.SelectItem
	preds   []*expr.Pred
	groupBy []string
	orderBy []exec.OrderKey
}

// NewMachine creates a state machine over the given table schema.
func NewMachine(schema storage.Schema) *Machine {
	return &Machine{schema: schema}
}

func (m *Machine) checkCol(name string) (storage.Field, error) {
	i := m.schema.Index(name)
	if i < 0 {
		return storage.Field{}, fmt.Errorf("%q: %w", name, ErrUnknownColumn)
	}
	return m.schema[i], nil
}

// Apply folds one gesture into the query state.
func (m *Machine) Apply(e Event) error {
	switch e.Kind {
	case DoubleTap:
		m.selects = nil
		m.preds = nil
		m.groupBy = nil
		m.orderBy = nil
		return nil
	case Tap:
		if _, err := m.checkCol(e.Column); err != nil {
			return err
		}
		for _, s := range m.selects {
			if s.Col == e.Column && s.Agg == exec.AggNone {
				return nil // idempotent
			}
		}
		m.selects = append(m.selects, exec.SelectItem{Col: e.Column})
		return nil
	case SwipeRange:
		f, err := m.checkCol(e.Column)
		if err != nil {
			return err
		}
		if f.Type == storage.TString {
			return fmt.Errorf("range swipe on TEXT column %q: %w", e.Column, ErrBadGesture)
		}
		if e.Lo > e.Hi {
			e.Lo, e.Hi = e.Hi, e.Lo // swipes work in both directions
		}
		m.preds = append(m.preds, expr.And(
			expr.Cmp(e.Column, expr.GE, storage.Float(e.Lo)),
			expr.Cmp(e.Column, expr.LT, storage.Float(e.Hi)),
		))
		return nil
	case Hold:
		if _, err := m.checkCol(e.Column); err != nil {
			return err
		}
		for _, g := range m.groupBy {
			if g == e.Column {
				return nil
			}
		}
		m.groupBy = append(m.groupBy, e.Column)
		// A held column is implicitly shown.
		present := false
		for _, s := range m.selects {
			if s.Col == e.Column && s.Agg == exec.AggNone {
				present = true
			}
		}
		if !present {
			m.selects = append(m.selects, exec.SelectItem{Col: e.Column})
		}
		return nil
	case Pinch:
		f, err := m.checkCol(e.Column)
		if err != nil {
			return err
		}
		agg := e.Agg
		if agg == exec.AggNone {
			agg = exec.AggSum
		}
		if f.Type == storage.TString && (agg == exec.AggSum || agg == exec.AggAvg) {
			return fmt.Errorf("pinch %v on TEXT column %q: %w", agg, e.Column, ErrBadGesture)
		}
		m.selects = append(m.selects, exec.SelectItem{Col: e.Column, Agg: agg})
		return nil
	case FlickUp, FlickDown:
		if _, err := m.checkCol(e.Column); err != nil {
			return err
		}
		m.orderBy = append(m.orderBy, exec.OrderKey{Col: e.Column, Desc: e.Kind == FlickDown})
		return nil
	default:
		return fmt.Errorf("gesture %v: %w", e.Kind, ErrBadGesture)
	}
}

// Query finalizes the current state into an executable query. When the
// query is grouped, plain selected columns that are not grouping columns
// are dropped (the touch UI greys them out), and when nothing is selected
// the grouping columns plus COUNT(*) are shown.
func (m *Machine) Query() (exec.Query, error) {
	sel := append([]exec.SelectItem(nil), m.selects...)
	if len(m.groupBy) > 0 {
		inGroup := func(c string) bool {
			for _, g := range m.groupBy {
				if g == c {
					return true
				}
			}
			return false
		}
		kept := sel[:0]
		hasAgg := false
		for _, s := range sel {
			if s.Agg != exec.AggNone {
				hasAgg = true
				kept = append(kept, s)
			} else if inGroup(s.Col) {
				kept = append(kept, s)
			}
		}
		sel = kept
		if !hasAgg {
			sel = append(sel, exec.SelectItem{Col: "*", Agg: exec.AggCount})
		}
	}
	if len(sel) == 0 {
		return exec.Query{}, ErrEmptyQuery
	}
	var where *expr.Pred
	switch len(m.preds) {
	case 0:
	case 1:
		where = m.preds[0]
	default:
		where = expr.And(m.preds...)
	}
	return exec.Query{
		Select:  sel,
		Where:   where,
		GroupBy: append([]string(nil), m.groupBy...),
		OrderBy: append([]exec.OrderKey(nil), m.orderBy...),
	}, nil
}

// Synthesize compiles a whole trace into a query.
func Synthesize(schema storage.Schema, trace Trace) (exec.Query, error) {
	m := NewMachine(schema)
	for i, e := range trace {
		if err := m.Apply(e); err != nil {
			return exec.Query{}, fmt.Errorf("event %d (%v on %q): %w", i, e.Kind, e.Column, err)
		}
	}
	return m.Query()
}
