package viz

import (
	"fmt"
	"strings"
)

// BarChart renders labeled values as horizontal ASCII bars scaled to width.
func BarChart(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	if len(labels) == 0 || len(labels) != len(values) {
		return ""
	}
	maxV := values[0]
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(float64(width) * v / maxV)
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s | %s %.4g\n", maxL, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

// LineChart renders a series as a width×height ASCII plot using the same
// per-column min/max rasterization the pixel-error metric uses.
func LineChart(ys []float64, width, height int) string {
	if len(ys) == 0 || width <= 0 || height <= 0 {
		return ""
	}
	lo, hi := ys[0], ys[0]
	for _, v := range ys {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := Raster(ys, nil, width, height, lo, hi)
	var b strings.Builder
	for row := height - 1; row >= 0; row-- {
		for c := 0; c < width; c++ {
			if grid[c][row] {
				b.WriteByte('*')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "[%.4g .. %.4g], n=%d\n", lo, hi, len(ys))
	return b.String()
}

// Sparkline renders a series as a single line of block characters.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := ys[0], ys[0]
	for _, v := range ys {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range ys {
		i := 0
		if hi > lo {
			i = int(float64(len(blocks)-1) * (v - lo) / (hi - lo))
		}
		b.WriteRune(blocks[i])
	}
	return b.String()
}
