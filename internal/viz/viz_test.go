package viz

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func noisySeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	ys := make([]float64, n)
	v := 0.0
	for i := range ys {
		v += rng.NormFloat64()
		ys[i] = v + 5*math.Sin(float64(i)/50)
	}
	return ys
}

func TestM4SelectsPerColumnExtremes(t *testing.T) {
	ys := []float64{0, 10, -5, 3, 7, 2, 9, -1}
	idx, err := M4(ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Column 0 = rows 0..3: first 0, last 3, min 2, max 1.
	// Column 1 = rows 4..7: first 4, last 7, min 7, max 6.
	want := []int{0, 1, 2, 3, 4, 6, 7}
	if len(idx) != len(want) {
		t.Fatalf("idx = %v, want %v", idx, want)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("idx = %v, want %v", idx, want)
		}
	}
}

func TestM4Errors(t *testing.T) {
	if _, err := M4(nil, 10); !errors.Is(err, ErrNoData) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := M4([]float64{1}, 0); !errors.Is(err, ErrBadWidth) {
		t.Errorf("width err = %v", err)
	}
}

func TestM4PixelLossless(t *testing.T) {
	ys := noisySeries(100000, 1)
	width, height := 200, 50
	idx, err := M4(ys, width)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) > 4*width {
		t.Errorf("M4 kept %d points, max %d", len(idx), 4*width)
	}
	pe, err := PixelError(ys, idx, width, height)
	if err != nil {
		t.Fatal(err)
	}
	if pe != 0 {
		t.Errorf("M4 pixel error = %v, want 0", pe)
	}
}

func TestM4BeatsSystematicAtEqualBudget(t *testing.T) {
	ys := noisySeries(50000, 2)
	width, height := 100, 40
	idx, _ := M4(ys, width)
	sys := Systematic(len(ys), len(idx))
	peM4, _ := PixelError(ys, idx, width, height)
	peSys, _ := PixelError(ys, sys, width, height)
	if peM4 >= peSys {
		t.Errorf("M4 error %v >= systematic %v at equal budget", peM4, peSys)
	}
}

func TestSystematic(t *testing.T) {
	idx := Systematic(100, 10)
	if len(idx) != 10 || idx[0] != 0 || idx[9] != 90 {
		t.Errorf("systematic = %v", idx)
	}
	if Systematic(0, 5) != nil || Systematic(10, 0) != nil {
		t.Error("degenerate systematic")
	}
	if got := Systematic(3, 10); len(got) != 3 {
		t.Errorf("k>n systematic = %v", got)
	}
}

func TestPixelErrorIdentityZero(t *testing.T) {
	ys := noisySeries(5000, 3)
	all := make([]int, len(ys))
	for i := range all {
		all[i] = i
	}
	pe, err := PixelError(ys, all, 80, 24)
	if err != nil || pe != 0 {
		t.Errorf("identity pixel error = %v (%v)", pe, err)
	}
	if _, err := PixelError(nil, nil, 80, 24); !errors.Is(err, ErrNoData) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := PixelError(ys, nil, 0, 24); !errors.Is(err, ErrBadWidth) {
		t.Errorf("width err = %v", err)
	}
}

func TestPixelErrorDetectsMissingSpikes(t *testing.T) {
	ys := make([]float64, 1000)
	ys[500] = 100 // single spike
	// Take only every 100th point: the spike is dropped.
	sub := Systematic(len(ys), 10)
	pe, err := PixelError(ys, sub, 50, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pe <= 0 {
		t.Errorf("spike loss undetected, pe = %v", pe)
	}
}

func mkGroups(sep float64, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	groups := make([][]float64, 5)
	for g := range groups {
		groups[g] = make([]float64, n)
		for i := range groups[g] {
			groups[g][i] = float64(g)*sep + rng.NormFloat64()
		}
	}
	return groups
}

func TestOrderSampleWellSeparated(t *testing.T) {
	groups := mkGroups(10, 2000, 4)
	res, err := OrderSample(groups, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Error("well separated groups should resolve")
	}
	if !TrueOrderAgrees(groups, res) {
		t.Error("order wrong")
	}
	total := 0
	for _, k := range res.Taken {
		total += k
	}
	if total >= 5*2000/2 {
		t.Errorf("order sampling used %d samples of %d", total, 5*2000)
	}
}

func TestOrderSampleCloseGroupsNeedsMore(t *testing.T) {
	far := mkGroups(10, 2000, 6)
	near := mkGroups(0.2, 2000, 6)
	rf, err := OrderSample(far, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := OrderSample(near, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	tf, tn := 0, 0
	for g := range far {
		tf += rf.Taken[g]
		tn += rn.Taken[g]
	}
	if tn <= tf {
		t.Errorf("close groups took %d samples, far groups %d", tn, tf)
	}
}

func TestOrderSampleErrors(t *testing.T) {
	if _, err := OrderSample(nil, 5, 1); !errors.Is(err, ErrNoData) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := OrderSample([][]float64{{1}, {}}, 5, 1); !errors.Is(err, ErrNoData) {
		t.Errorf("empty group err = %v", err)
	}
}

func TestBarChart(t *testing.T) {
	s := BarChart([]string{"aa", "b"}, []float64{2, 4}, 8)
	if !strings.Contains(s, "########") {
		t.Errorf("chart:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("lines = %d", len(lines))
	}
	if BarChart(nil, nil, 10) != "" {
		t.Error("empty chart")
	}
	if BarChart([]string{"a"}, []float64{1, 2}, 10) != "" {
		t.Error("mismatched chart")
	}
}

func TestLineChartAndSparkline(t *testing.T) {
	ys := noisySeries(500, 8)
	s := LineChart(ys, 60, 12)
	if !strings.Contains(s, "*") {
		t.Error("line chart empty")
	}
	if LineChart(nil, 10, 5) != "" {
		t.Error("nil series chart")
	}
	sp := Sparkline([]float64{1, 2, 3, 8})
	if len([]rune(sp)) != 4 {
		t.Errorf("sparkline = %q", sp)
	}
	if Sparkline(nil) != "" {
		t.Error("nil sparkline")
	}
}

func TestDownsample(t *testing.T) {
	got := Downsample([]float64{10, 20, 30}, []int{2, 0})
	if len(got) != 2 || got[0] != 30 || got[1] != 10 {
		t.Errorf("downsample = %v", got)
	}
}

func TestNearlyEqualHelper(t *testing.T) {
	if !nearlyEqual(1.0, 1.0000001, 1e-5) || nearlyEqual(1, 2, 0.5) {
		t.Error("nearlyEqual")
	}
}
