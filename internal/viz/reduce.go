// Package viz implements the visualization-side database optimizations the
// tutorial surveys: M4-style query-result reduction for line charts [11]
// (orders of magnitude fewer points with near-zero pixel error), rapid
// order-preserving sampling for ordered bar charts [12], and a small ASCII
// renderer so examples and experiment binaries can show their output in a
// terminal.
package viz

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dex/internal/metrics"
)

// Package-level sentinel errors.
var (
	ErrBadWidth = errors.New("viz: width must be positive")
	ErrNoData   = errors.New("viz: empty series")
)

// M4 selects, for each of width pixel columns over the series index range,
// the first, last, minimum and maximum points — the exact set of rows
// needed to rasterize the line chart pixel-perfectly. It returns the
// selected indexes, sorted and deduplicated.
func M4(ys []float64, width int) ([]int, error) {
	if width <= 0 {
		return nil, ErrBadWidth
	}
	n := len(ys)
	if n == 0 {
		return nil, ErrNoData
	}
	if width > n {
		width = n
	}
	picked := map[int]bool{}
	for c := 0; c < width; c++ {
		lo := c * n / width
		hi := (c + 1) * n / width
		if hi <= lo {
			hi = lo + 1
		}
		first, last := lo, hi-1
		minI, maxI := lo, lo
		for i := lo; i < hi; i++ {
			if ys[i] < ys[minI] {
				minI = i
			}
			if ys[i] > ys[maxI] {
				maxI = i
			}
		}
		picked[first] = true
		picked[last] = true
		picked[minI] = true
		picked[maxI] = true
	}
	out := make([]int, 0, len(picked))
	for i := range picked {
		out = append(out, i)
	}
	sort.Ints(out)
	return out, nil
}

// Systematic returns k evenly spaced indexes over [0,n) — the naive
// reduction baseline M4 is compared against.
func Systematic(n, k int) []int {
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = i * n / k
	}
	return out
}

// Raster rasterizes a series (optionally restricted to a subset of indexes)
// onto a width×height pixel grid using per-column min/max vertical spans,
// exactly as a line-chart renderer would light pixels.
func Raster(ys []float64, subset []int, width, height int, lo, hi float64) [][]bool {
	grid := make([][]bool, width)
	for c := range grid {
		grid[c] = make([]bool, height)
	}
	n := len(ys)
	if n == 0 || hi <= lo {
		return grid
	}
	idx := subset
	if idx == nil {
		idx = make([]int, n)
		for i := range idx {
			idx[i] = i
		}
	}
	py := func(v float64) int {
		p := int(float64(height) * (v - lo) / (hi - lo))
		if p >= height {
			p = height - 1
		}
		if p < 0 {
			p = 0
		}
		return p
	}
	// Per column: vertical span of the points that fall there.
	type span struct {
		lo, hi int
		set    bool
	}
	spans := make([]span, width)
	for _, i := range idx {
		c := i * width / n
		if c >= width {
			c = width - 1
		}
		p := py(ys[i])
		s := &spans[c]
		if !s.set {
			s.lo, s.hi, s.set = p, p, true
		} else {
			if p < s.lo {
				s.lo = p
			}
			if p > s.hi {
				s.hi = p
			}
		}
	}
	for c, s := range spans {
		if !s.set {
			continue
		}
		for p := s.lo; p <= s.hi; p++ {
			grid[c][p] = true
		}
	}
	return grid
}

// PixelError renders the full series and the reduced subset at width×height
// and returns the fraction of lit pixels that differ (symmetric difference
// over union). 0 means the reduction is visually lossless.
func PixelError(ys []float64, subset []int, width, height int) (float64, error) {
	if width <= 0 || height <= 0 {
		return 0, ErrBadWidth
	}
	if len(ys) == 0 {
		return 0, ErrNoData
	}
	lo, hi := ys[0], ys[0]
	for _, v := range ys {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	full := Raster(ys, nil, width, height, lo, hi)
	red := Raster(ys, subset, width, height, lo, hi)
	diff, union := 0, 0
	for c := 0; c < width; c++ {
		for p := 0; p < height; p++ {
			a, b := full[c][p], red[c][p]
			if a || b {
				union++
				if a != b {
					diff++
				}
			}
		}
	}
	if union == 0 {
		return 0, nil
	}
	return float64(diff) / float64(union), nil
}

// OrderResult reports an order-preserving sampling run.
type OrderResult struct {
	Means []float64
	Taken []int // samples drawn per group
	// Resolved is true when every adjacent pair in the estimated order is
	// separated by non-overlapping confidence intervals.
	Resolved bool
}

// OrderSample incrementally samples values from each group until the
// visual ordering of the group means is certain (adjacent 95% CIs no longer
// overlap) or the data is exhausted — the "rapid sampling with ordering
// guarantees" idea of [12]. Groups are sampled in random order batches of
// size batch.
func OrderSample(groups [][]float64, batch int, seed int64) (OrderResult, error) {
	if len(groups) == 0 {
		return OrderResult{}, ErrNoData
	}
	if batch <= 0 {
		batch = 10
	}
	rng := rand.New(rand.NewSource(seed))
	perms := make([][]int, len(groups))
	streams := make([]metrics.Stream, len(groups))
	taken := make([]int, len(groups))
	for g := range groups {
		if len(groups[g]) == 0 {
			return OrderResult{}, fmt.Errorf("group %d empty: %w", g, ErrNoData)
		}
		perms[g] = rng.Perm(len(groups[g]))
	}
	draw := func(g, k int) {
		for i := 0; i < k && taken[g] < len(groups[g]); i++ {
			streams[g].Add(groups[g][perms[g][taken[g]]])
			taken[g]++
		}
	}
	// Prime with one batch each.
	for g := range groups {
		draw(g, batch)
	}
	for {
		// Current order and CI overlaps.
		order := make([]int, len(groups))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return streams[order[a]].Mean() < streams[order[b]].Mean()
		})
		ambiguous := -1
		for i := 1; i < len(order); i++ {
			a, b := order[i-1], order[i]
			ca := streams[a].MeanCI(metrics.Z95)
			cb := streams[b].MeanCI(metrics.Z95)
			if streams[a].Mean()+ca >= streams[b].Mean()-cb {
				// Overlapping pair: needs more samples, unless exhausted.
				if taken[a] < len(groups[a]) || taken[b] < len(groups[b]) {
					ambiguous = i
					break
				}
			}
		}
		if ambiguous < 0 {
			resolved := true
			for i := 1; i < len(order); i++ {
				a, b := order[i-1], order[i]
				if streams[a].Mean()+streams[a].MeanCI(metrics.Z95) >=
					streams[b].Mean()-streams[b].MeanCI(metrics.Z95) {
					resolved = false
				}
			}
			means := make([]float64, len(groups))
			for g := range groups {
				means[g] = streams[g].Mean()
			}
			return OrderResult{Means: means, Taken: taken, Resolved: resolved}, nil
		}
		draw(order[ambiguous-1], batch)
		draw(order[ambiguous], batch)
	}
}

// TrueOrderAgrees checks an OrderSample result against the exact group
// means: it returns true when the sampled ranking equals the true ranking.
func TrueOrderAgrees(groups [][]float64, res OrderResult) bool {
	type pair struct {
		g int
		m float64
	}
	truth := make([]pair, len(groups))
	est := make([]pair, len(groups))
	for g := range groups {
		truth[g] = pair{g, metrics.Mean(groups[g])}
		est[g] = pair{g, res.Means[g]}
	}
	sort.Slice(truth, func(a, b int) bool { return truth[a].m < truth[b].m })
	sort.Slice(est, func(a, b int) bool { return est[a].m < est[b].m })
	for i := range truth {
		if truth[i].g != est[i].g {
			return false
		}
	}
	return true
}

// Downsample gathers ys at the given indexes (convenience for callers
// rendering reduced series).
func Downsample(ys []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, p := range idx {
		out[i] = ys[p]
	}
	return out
}

// nearlyEqual guards float comparisons in tests and internal checks.
func nearlyEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
