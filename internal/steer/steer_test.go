package steer

import (
	"errors"
	"math/rand"
	"testing"

	"dex/internal/expr"
	"dex/internal/storage"
)

// mkSpace builds a table of n uniform points in [0,100)^2.
func mkSpace(tb testing.TB, n int, seed int64) *storage.Table {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
	}
	t, err := storage.FromColumns("space", storage.Schema{
		{Name: "x", Type: storage.TFloat},
		{Name: "y", Type: storage.TFloat},
	}, []storage.Column{storage.NewFloatColumn(xs), storage.NewFloatColumn(ys)})
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

func rectOracle(x0, x1, y0, y1 float64) Oracle {
	return func(x []float64) bool {
		return x[0] >= x0 && x[0] < x1 && x[1] >= y0 && x[1] < y1
	}
}

func TestConvergesOnRectangle(t *testing.T) {
	tbl := mkSpace(t, 4000, 1)
	oracle := rectOracle(20, 45, 30, 60)
	e, err := New(tbl, []string{"x", "y"}, oracle, Options{Seed: 2, MaxIters: 15, TargetF1: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no iterations")
	}
	final := stats[len(stats)-1]
	if final.F1 < 0.9 {
		t.Errorf("final F1 = %.3f, want >= 0.9 (labeled %d)", final.F1, final.Labeled)
	}
	// The steering loop should need far fewer labels than the data size.
	if final.Labeled > tbl.NumRows()/4 {
		t.Errorf("labeled %d of %d rows", final.Labeled, tbl.NumRows())
	}
}

func TestConvergesOnDisjunctiveTarget(t *testing.T) {
	tbl := mkSpace(t, 6000, 3)
	r1 := rectOracle(5, 25, 5, 25)
	r2 := rectOracle(60, 90, 55, 85)
	oracle := func(x []float64) bool { return r1(x) || r2(x) }
	e, err := New(tbl, []string{"x", "y"}, oracle, Options{Seed: 4, MaxIters: 20, TargetF1: 0.92})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	final := stats[len(stats)-1]
	if final.F1 < 0.85 {
		t.Errorf("disjunctive final F1 = %.3f (labeled %d)", final.F1, final.Labeled)
	}
	if final.Regions < 2 {
		t.Errorf("regions = %d, want >= 2 for a disjunctive target", final.Regions)
	}
}

func TestF1Improves(t *testing.T) {
	tbl := mkSpace(t, 3000, 5)
	e, _ := New(tbl, []string{"x", "y"}, rectOracle(40, 70, 10, 50), Options{Seed: 6, MaxIters: 12})
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats[len(stats)-1].F1 <= stats[0].F1 && stats[0].F1 < 0.95 {
		t.Errorf("F1 did not improve: first=%.3f last=%.3f", stats[0].F1, stats[len(stats)-1].F1)
	}
	// Labeled counts strictly increase until the last recorded round.
	for i := 1; i < len(stats); i++ {
		if stats[i].Labeled <= stats[i-1].Labeled {
			t.Error("labeled count should grow per iteration")
		}
	}
}

func TestSteeringBeatsRandomAtEqualBudget(t *testing.T) {
	tbl := mkSpace(t, 5000, 7)
	oracle := rectOracle(10, 22, 70, 82) // small target: hard for random
	wins := 0
	const trials = 3
	for trial := 0; trial < trials; trial++ {
		seed := int64(100 + trial)
		e, err := New(tbl, []string{"x", "y"}, oracle, Options{Seed: seed, MaxIters: 10})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		final := stats[len(stats)-1]
		randF1, err := RandomBaseline(tbl, []string{"x", "y"}, oracle, final.Labeled, seed)
		if err != nil {
			t.Fatal(err)
		}
		if final.F1 > randF1 {
			wins++
		}
	}
	if wins < 2 {
		t.Errorf("steering beat random in only %d/%d trials", wins, trials)
	}
}

func TestQueryDecompilation(t *testing.T) {
	tbl := mkSpace(t, 4000, 8)
	oracle := rectOracle(30, 60, 20, 50)
	e, _ := New(tbl, []string{"x", "y"}, oracle, Options{Seed: 9, MaxIters: 15, TargetF1: 0.95})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	pred := e.Query()
	if pred == nil {
		t.Fatal("no query extracted")
	}
	// The predicate should classify rows roughly like the oracle.
	sel, err := expr.Filter(tbl, pred)
	if err != nil {
		t.Fatalf("extracted predicate invalid: %v (pred=%s)", err, pred)
	}
	inSel := map[int]bool{}
	for _, r := range sel {
		inSel[r] = true
	}
	xc, _ := tbl.ColumnByName("x")
	yc, _ := tbl.ColumnByName("y")
	agree := 0
	for r := 0; r < tbl.NumRows(); r++ {
		truth := oracle([]float64{xc.Value(r).AsFloat(), yc.Value(r).AsFloat()})
		if truth == inSel[r] {
			agree++
		}
	}
	if frac := float64(agree) / float64(tbl.NumRows()); frac < 0.9 {
		t.Errorf("query agreement = %.3f", frac)
	}
}

func TestNewErrors(t *testing.T) {
	tbl := mkSpace(t, 10, 10)
	if _, err := New(tbl, nil, func([]float64) bool { return true }, Options{}); !errors.Is(err, ErrNoAttrs) {
		t.Errorf("no attrs err = %v", err)
	}
	if _, err := New(tbl, []string{"x"}, nil, Options{}); !errors.Is(err, ErrNoOracle) {
		t.Errorf("nil oracle err = %v", err)
	}
	if _, err := New(tbl, []string{"zzz"}, func([]float64) bool { return true }, Options{}); err == nil {
		t.Error("missing attr should error")
	}
	empty, _ := storage.NewTable("e", tbl.Schema())
	if _, err := New(empty, []string{"x"}, func([]float64) bool { return true }, Options{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
}

func TestAllIrrelevantSpace(t *testing.T) {
	tbl := mkSpace(t, 500, 11)
	e, err := New(tbl, []string{"x", "y"}, func([]float64) bool { return false }, Options{Seed: 12, MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = stats
	if q := e.Query(); q != nil {
		t.Errorf("query over empty target = %v", q)
	}
}
