// Package steer implements automatic exploration steering by example in the
// style of AIDE [18] and the query-steering vision [14]: the system shows
// the user sample tuples, the user marks them relevant or not, and a
// classifier over the accumulated feedback steers further sampling toward
// the boundaries of the predicted relevant regions, converging on the
// user's (unstated) target query. The learned model is finally decompiled
// into a relational predicate the user could never have written upfront.
package steer

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dex/internal/expr"
	"dex/internal/learn"
	"dex/internal/metrics"
	"dex/internal/storage"
)

// Package-level sentinel errors.
var (
	ErrNoAttrs  = errors.New("steer: at least one exploration attribute required")
	ErrNoOracle = errors.New("steer: nil oracle")
	ErrEmpty    = errors.New("steer: empty exploration table")
)

// Oracle stands in for the user: it labels a tuple (by its exploration
// attributes) as relevant or not. Experiments instantiate it with a hidden
// ground-truth query.
type Oracle func(x []float64) bool

// Options tunes the steering loop.
type Options struct {
	// InitPerDim controls phase-1 grid sampling: the domain is cut into
	// InitPerDim cells per dimension and one tuple is labeled per occupied
	// cell. Default 4.
	InitPerDim int
	// BatchRandom is the number of extra random tuples labeled per
	// iteration (exploration). Default 5.
	BatchRandom int
	// BatchBoundary is the number of tuples labeled per iteration around
	// the predicted relevant-region boundaries (exploitation). Default 15.
	BatchBoundary int
	// Margin widens regions by this fraction of the domain when sampling
	// boundaries. Default 0.1.
	Margin float64
	// MaxIters bounds the loop. Default 20.
	MaxIters int
	// TargetF1 stops early once reached (0 disables).
	TargetF1 float64
	// Seed drives all sampling.
	Seed int64
	// Tree configures the classifier.
	Tree learn.Options
}

func (o *Options) fill() {
	if o.InitPerDim <= 0 {
		o.InitPerDim = 4
	}
	if o.BatchRandom <= 0 {
		o.BatchRandom = 5
	}
	if o.BatchBoundary <= 0 {
		o.BatchBoundary = 15
	}
	if o.Margin <= 0 {
		o.Margin = 0.1
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 20
	}
	if o.Tree.MaxDepth <= 0 {
		o.Tree.MaxDepth = 10
	}
	if o.Tree.MinLeaf <= 0 {
		o.Tree.MinLeaf = 2
	}
}

// IterStats is one point on the steering convergence curve.
type IterStats struct {
	Iter    int
	Labeled int
	F1      float64
	Regions int
}

// Explorer runs the steering loop over a table's numeric attributes.
type Explorer struct {
	attrs   []string
	data    [][]float64 // row-major feature matrix
	domain  learn.Region
	oracle  Oracle
	opt     Options
	rng     *rand.Rand
	labeled map[int]bool
	X       [][]float64
	y       []bool
	tree    *learn.Tree
	truth   []bool // cached oracle labels for evaluation
}

// New prepares an explorer over the named numeric attributes of t.
func New(t *storage.Table, attrs []string, oracle Oracle, opt Options) (*Explorer, error) {
	if len(attrs) == 0 {
		return nil, ErrNoAttrs
	}
	if oracle == nil {
		return nil, ErrNoOracle
	}
	if t.NumRows() == 0 {
		return nil, ErrEmpty
	}
	opt.fill()
	cols := make([]storage.Column, len(attrs))
	for i, a := range attrs {
		c, err := t.ColumnByName(a)
		if err != nil {
			return nil, err
		}
		if c.Type() == storage.TString {
			return nil, fmt.Errorf("steer: attribute %q is not numeric", a)
		}
		cols[i] = c
	}
	n := t.NumRows()
	data := make([][]float64, n)
	domain := make(learn.Region, len(attrs))
	for d := range domain {
		domain[d] = learn.Range{Lo: math.Inf(1), Hi: math.Inf(-1)}
	}
	for r := 0; r < n; r++ {
		x := make([]float64, len(attrs))
		for d, c := range cols {
			x[d] = c.Value(r).AsFloat()
			if x[d] < domain[d].Lo {
				domain[d].Lo = x[d]
			}
			if x[d] > domain[d].Hi {
				domain[d].Hi = x[d]
			}
		}
		data[r] = x
	}
	// Half-open domain: nudge the upper bounds so max points are inside.
	for d := range domain {
		span := domain[d].Hi - domain[d].Lo
		if span == 0 {
			span = 1
		}
		domain[d].Hi += span * 1e-9
	}
	truth := make([]bool, n)
	for r := range truth {
		truth[r] = oracle(data[r])
	}
	return &Explorer{
		attrs:   append([]string(nil), attrs...),
		data:    data,
		domain:  domain,
		oracle:  oracle,
		opt:     opt,
		rng:     rand.New(rand.NewSource(opt.Seed)),
		labeled: map[int]bool{},
		truth:   truth,
	}, nil
}

// Labeled returns how many tuples have been labeled so far.
func (e *Explorer) Labeled() int { return len(e.labeled) }

func (e *Explorer) label(row int) {
	if e.labeled[row] {
		return
	}
	e.labeled[row] = true
	e.X = append(e.X, e.data[row])
	e.y = append(e.y, e.truth[row])
}

// Run executes the steering loop and returns the convergence trajectory.
func (e *Explorer) Run() ([]IterStats, error) {
	e.gridSample()
	var stats []IterStats
	for it := 0; it < e.opt.MaxIters; it++ {
		if err := e.retrain(); err != nil {
			return stats, err
		}
		f1 := e.EvalF1()
		regions := len(e.Regions())
		stats = append(stats, IterStats{Iter: it, Labeled: e.Labeled(), F1: f1, Regions: regions})
		if e.opt.TargetF1 > 0 && f1 >= e.opt.TargetF1 {
			break
		}
		e.boundarySample()
		e.randomSample(e.opt.BatchRandom)
	}
	return stats, nil
}

// gridSample labels one random tuple per occupied grid cell (phase 1:
// relevant-object discovery).
func (e *Explorer) gridSample() {
	g := e.opt.InitPerDim
	cells := map[string][]int{}
	for r, x := range e.data {
		key := ""
		for d := range x {
			span := e.domain[d].Hi - e.domain[d].Lo
			b := 0
			if span > 0 {
				b = int(float64(g) * (x[d] - e.domain[d].Lo) / span)
				if b >= g {
					b = g - 1
				}
			}
			key += fmt.Sprintf("%d,", b)
		}
		cells[key] = append(cells[key], r)
	}
	for _, rows := range cells {
		e.label(rows[e.rng.Intn(len(rows))])
	}
}

// randomSample labels k random unlabeled tuples.
func (e *Explorer) randomSample(k int) {
	for tries := 0; k > 0 && tries < 50*k; tries++ {
		r := e.rng.Intn(len(e.data))
		if !e.labeled[r] {
			e.label(r)
			k--
		}
	}
}

// boundarySample labels tuples near the predicted region boundaries
// (misclassified-sample exploitation): tuples inside the margin-expanded
// region but outside the margin-shrunk region.
func (e *Explorer) boundarySample() {
	regions := e.Regions()
	if len(regions) == 0 {
		e.randomSample(e.opt.BatchBoundary)
		return
	}
	margins := make([]float64, len(e.domain))
	for d := range margins {
		margins[d] = (e.domain[d].Hi - e.domain[d].Lo) * e.opt.Margin
	}
	inBand := func(x []float64) bool {
		for _, g := range regions {
			outer, inner := true, true
			for d, r := range g {
				if x[d] < r.Lo-margins[d] || x[d] >= r.Hi+margins[d] {
					outer = false
					break
				}
				if x[d] < r.Lo+margins[d] || x[d] >= r.Hi-margins[d] {
					inner = false
				}
			}
			if outer && !inner {
				return true
			}
		}
		return false
	}
	var cands []int
	for r, x := range e.data {
		if !e.labeled[r] && inBand(x) {
			cands = append(cands, r)
		}
	}
	k := e.opt.BatchBoundary
	for k > 0 && len(cands) > 0 {
		i := e.rng.Intn(len(cands))
		e.label(cands[i])
		cands[i] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
		k--
	}
	if k > 0 {
		e.randomSample(k)
	}
}

func (e *Explorer) retrain() error {
	tree, err := learn.FitTree(e.X, e.y, e.opt.Tree)
	if err != nil {
		return err
	}
	e.tree = tree
	return nil
}

// Regions returns the current predicted relevant regions.
func (e *Explorer) Regions() []learn.Region {
	if e.tree == nil {
		return nil
	}
	return e.tree.PositiveRegions(e.domain)
}

// EvalF1 scores the current model against the ground truth over all rows.
func (e *Explorer) EvalF1() float64 {
	if e.tree == nil {
		return 0
	}
	tp, fp, fn := 0, 0, 0
	for r, x := range e.data {
		pred := e.tree.Predict(x)
		switch {
		case pred && e.truth[r]:
			tp++
		case pred && !e.truth[r]:
			fp++
		case !pred && e.truth[r]:
			fn++
		}
	}
	return metrics.F1(tp, fp, fn)
}

// Query decompiles the current model into a relational predicate over the
// exploration attributes: a disjunction of per-region conjunctive ranges.
func (e *Explorer) Query() *expr.Pred {
	regions := e.Regions()
	if len(regions) == 0 {
		return nil
	}
	var terms []*expr.Pred
	for _, g := range regions {
		var conj []*expr.Pred
		for d, r := range g {
			if !math.IsInf(r.Lo, -1) && r.Lo > e.domain[d].Lo {
				conj = append(conj, expr.Cmp(e.attrs[d], expr.GE, storage.Float(r.Lo)))
			}
			if !math.IsInf(r.Hi, 1) && r.Hi < e.domain[d].Hi {
				conj = append(conj, expr.Cmp(e.attrs[d], expr.LT, storage.Float(r.Hi)))
			}
		}
		if len(conj) == 0 {
			return expr.True()
		}
		terms = append(terms, expr.And(conj...))
	}
	if len(terms) == 1 {
		return terms[0]
	}
	return expr.Or(terms...)
}

// RandomBaseline labels `budget` random tuples, fits the same classifier
// once, and returns its F1 — the no-steering control in the AIDE
// experiments.
func RandomBaseline(t *storage.Table, attrs []string, oracle Oracle, budget int, seed int64) (float64, error) {
	e, err := New(t, attrs, oracle, Options{Seed: seed})
	if err != nil {
		return 0, err
	}
	e.randomSample(budget)
	if err := e.retrain(); err != nil {
		return 0, err
	}
	return e.EvalF1(), nil
}
