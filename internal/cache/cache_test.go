package cache

import (
	"errors"
	"testing"
)

func TestBasicPutGet(t *testing.T) {
	c, err := New[string, int](10)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Put("a", 1, 3) {
		t.Fatal("put rejected")
	}
	v, ok := c.Get("a")
	if !ok || v != 1 {
		t.Errorf("get = %v,%v", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("phantom hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v", got)
	}
}

func TestEvictionByCost(t *testing.T) {
	c, _ := New[int, string](10)
	c.Put(1, "a", 4)
	c.Put(2, "b", 4)
	c.Put(3, "c", 4) // must evict key 1
	if c.Contains(1) {
		t.Error("oldest not evicted")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Error("wrong eviction")
	}
	if c.Used() != 8 || c.Len() != 2 {
		t.Errorf("used=%d len=%d", c.Used(), c.Len())
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestRecencyOrder(t *testing.T) {
	c, _ := New[int, int](3)
	c.Put(1, 1, 1)
	c.Put(2, 2, 1)
	c.Put(3, 3, 1)
	c.Get(1)       // refresh 1
	c.Put(4, 4, 1) // evicts 2 (LRU)
	if c.Contains(2) {
		t.Error("2 should be evicted")
	}
	if !c.Contains(1) {
		t.Error("1 was refreshed, must stay")
	}
}

func TestUpdateCost(t *testing.T) {
	c, _ := New[int, int](10)
	c.Put(1, 1, 2)
	c.Put(1, 10, 6)
	if c.Used() != 6 || c.Len() != 1 {
		t.Errorf("used=%d len=%d", c.Used(), c.Len())
	}
	v, _ := c.Get(1)
	if v != 10 {
		t.Errorf("updated value = %v", v)
	}
	// Updating to a cost that overflows evicts others, keeps itself.
	c.Put(2, 2, 3)
	c.Put(1, 1, 9)
	if c.Contains(2) || !c.Contains(1) {
		t.Error("cost growth eviction wrong")
	}
}

func TestOversizedRejected(t *testing.T) {
	c, _ := New[int, int](5)
	if c.Put(1, 1, 6) {
		t.Error("oversized accepted")
	}
	if c.Put(1, 1, -1) {
		t.Error("negative cost accepted")
	}
	if c.Len() != 0 {
		t.Error("cache should be empty")
	}
}

func TestRemove(t *testing.T) {
	c, _ := New[int, int](5)
	c.Put(1, 1, 2)
	if !c.Remove(1) {
		t.Error("remove existing")
	}
	if c.Remove(1) {
		t.Error("remove missing should be false")
	}
	if c.Used() != 0 {
		t.Errorf("used = %d", c.Used())
	}
}

func TestBadCapacity(t *testing.T) {
	if _, err := New[int, int](0); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("err = %v", err)
	}
}

func TestResetStats(t *testing.T) {
	c, _ := New[int, int](5)
	c.Put(1, 1, 1)
	c.Get(1)
	c.ResetStats()
	if s := c.Stats(); s.Hits != 0 || s.Puts != 0 {
		t.Errorf("stats = %+v", s)
	}
	if !c.Contains(1) {
		t.Error("entries must survive ResetStats")
	}
}

func TestZeroCostEntries(t *testing.T) {
	c, _ := New[int, int](1)
	for i := 0; i < 100; i++ {
		c.Put(i, i, 0)
	}
	if c.Len() != 100 {
		t.Errorf("len = %d, zero-cost entries should all fit", c.Len())
	}
}
