package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestSyncConcurrentGetPut hammers one shared Sync cache from many
// goroutines mixing get/put/remove/len/stats — the access pattern of the
// query service, where every request handler shares the result cache.
// Under -race this is the test that catches an unguarded path; without it,
// the invariant checks still pin budget and counter consistency.
func TestSyncConcurrentGetPut(t *testing.T) {
	const budget = 1 << 12
	c, err := NewSync[string, int](budget)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const ops = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("q%d", rng.Intn(200))
				switch rng.Intn(10) {
				case 0:
					c.Remove(key)
				case 1, 2, 3:
					c.Put(key, g*ops+i, int64(1+rng.Intn(64)))
				default:
					if v, ok := c.Get(key); ok && v < 0 {
						t.Errorf("impossible cached value %d", v)
					}
				}
				if used := c.Used(); used > budget {
					t.Errorf("budget exceeded: used %d > %d", used, budget)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if st.Hits+st.Misses == 0 || st.Puts == 0 {
		t.Fatalf("counters did not move: %+v", st)
	}
	if c.Used() > budget || c.Len() < 0 {
		t.Fatalf("final state violates invariants: used=%d len=%d", c.Used(), c.Len())
	}
	if hr := st.HitRate(); hr < 0 || hr > 1 {
		t.Fatalf("hit rate %f out of range", hr)
	}
}

// TestSyncClear checks Clear empties the cache without counting evictions.
func TestSyncClear(t *testing.T) {
	c, err := NewSync[int, string](100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Put(i, "v", 10)
	}
	before := c.Stats().Evictions
	c.Clear()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatalf("Clear left len=%d used=%d", c.Len(), c.Used())
	}
	if c.Stats().Evictions != before {
		t.Fatal("Clear counted invalidations as evictions")
	}
	// The cache stays usable after Clear.
	if !c.Put(1, "again", 10) {
		t.Fatal("Put after Clear failed")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("Get after Clear missed")
	}
}
