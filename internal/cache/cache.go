// Package cache provides the generic LRU cache the middleware layer builds
// on: result prefetching [36,63], speculative cube execution [37,35] and
// diversification/result reuse [41] all need a bounded store with
// recency-based eviction and hit accounting.
package cache

import (
	"container/list"
	"errors"
)

// ErrBadCapacity is returned for non-positive capacities.
var ErrBadCapacity = errors.New("cache: capacity must be positive")

// Stats counts cache traffic.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Puts      int64
}

// HitRate returns Hits / (Hits + Misses), or 0 if nothing was looked up.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry[K comparable, V any] struct {
	key  K
	val  V
	cost int64
}

// LRU is a cost-bounded least-recently-used cache. Each value carries a
// cost (e.g. rows or bytes); the total cost is kept at or below the budget
// by evicting the least recently used entries. LRU is not safe for
// concurrent use; callers that share one wrap it in a mutex.
type LRU[K comparable, V any] struct {
	budget int64
	used   int64
	ll     *list.List
	items  map[K]*list.Element
	stats  Stats
}

// New creates an LRU with the given total cost budget.
func New[K comparable, V any](budget int64) (*LRU[K, V], error) {
	if budget <= 0 {
		return nil, ErrBadCapacity
	}
	return &LRU[K, V]{
		budget: budget,
		ll:     list.New(),
		items:  make(map[K]*list.Element),
	}, nil
}

// Get returns the cached value and marks it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Contains reports presence without touching recency or stats.
func (c *LRU[K, V]) Contains(key K) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts or refreshes a value with the given cost. Values costing more
// than the whole budget are rejected (returns false).
func (c *LRU[K, V]) Put(key K, val V, cost int64) bool {
	if cost < 0 || cost > c.budget {
		return false
	}
	c.stats.Puts++
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry[K, V])
		c.used += cost - e.cost
		e.val, e.cost = val, cost
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry[K, V]{key: key, val: val, cost: cost})
		c.items[key] = el
		c.used += cost
	}
	for c.used > c.budget {
		c.evictOldest()
	}
	return true
}

// Remove drops a key if present.
func (c *LRU[K, V]) Remove(key K) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeElement(el)
	return true
}

// Clear drops every entry without counting evictions (stats are kept):
// invalidation after a data change is not an eviction under pressure.
func (c *LRU[K, V]) Clear() {
	for el := c.ll.Back(); el != nil; el = c.ll.Back() {
		c.removeElement(el)
	}
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int { return c.ll.Len() }

// Used returns the total cost of cached entries.
func (c *LRU[K, V]) Used() int64 { return c.used }

// Stats returns a snapshot of the counters.
func (c *LRU[K, V]) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (entries are kept).
func (c *LRU[K, V]) ResetStats() { c.stats = Stats{} }

func (c *LRU[K, V]) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.stats.Evictions++
	c.removeElement(el)
}

func (c *LRU[K, V]) removeElement(el *list.Element) {
	e := el.Value.(*entry[K, V])
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.used -= e.cost
}
