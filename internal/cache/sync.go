package cache

import (
	"sync"

	"dex/internal/fault"
)

// Cache failpoints model an unavailable or slow cache tier: an injected
// error on get reads as a miss, on put the insert is dropped — the service
// must keep answering (from the engine) either way. Latency policies
// simulate a slow cache without failing it.
var (
	fpGet = fault.Register("cache/get")
	fpPut = fault.Register("cache/put")
)

// Sync wraps an LRU with a mutex, making it safe for concurrent use — the
// form the service layer shares one result cache across request handlers.
// Every operation (including the stats bookkeeping inside Get/Put) runs
// under the lock, so counters never tear and the cost budget invariant
// holds at all times.
type Sync[K comparable, V any] struct {
	mu  sync.Mutex
	lru *LRU[K, V]
}

// NewSync creates a synchronized LRU with the given total cost budget.
func NewSync[K comparable, V any](budget int64) (*Sync[K, V], error) {
	lru, err := New[K, V](budget)
	if err != nil {
		return nil, err
	}
	return &Sync[K, V]{lru: lru}, nil
}

// Get returns the cached value and marks it most recently used. An
// injected cache/get fault reads as a miss.
func (c *Sync[K, V]) Get(key K) (V, bool) {
	if fpGet.Hit() != nil {
		var zero V
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Get(key)
}

// Contains reports presence without touching recency or stats.
func (c *Sync[K, V]) Contains(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Contains(key)
}

// Put inserts or refreshes a value with the given cost. An injected
// cache/put fault drops the insert.
func (c *Sync[K, V]) Put(key K, val V, cost int64) bool {
	if fpPut.Hit() != nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Put(key, val, cost)
}

// Remove drops a key if present.
func (c *Sync[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Remove(key)
}

// Clear drops every entry (stats are kept).
func (c *Sync[K, V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Clear()
}

// Len returns the number of cached entries.
func (c *Sync[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Used returns the total cost of cached entries.
func (c *Sync[K, V]) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Used()
}

// Stats returns a snapshot of the counters.
func (c *Sync[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Stats()
}

// ResetStats zeroes the counters (entries are kept).
func (c *Sync[K, V]) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.ResetStats()
}
