// Package fault is a zero-dependency, deterministic failpoint framework:
// named injection sites compiled into the hot seams of the engine and
// service, armed with seeded per-site policies — error, error-once,
// error-rate, latency, panic — from code (Enable) or the DEX_FAILPOINTS
// environment variable. It exists so failure behavior can be tested the
// same way correctness is: reproducibly.
//
// A site is declared once, at package init, as a package-level variable:
//
//	var fpScan = fault.Register("exec/scan")
//
// and hit wherever the failure should be injectable:
//
//	if err := fpScan.Hit(); err != nil {
//	    return err
//	}
//
// When a site is not armed, Hit is a single atomic pointer load returning
// nil — cheap enough for per-morsel and per-record call sites, so the
// framework can stay compiled into production binaries (the acceptance
// budget is < 3% service throughput regression with every site inactive).
//
// Determinism: every probabilistic policy draws from a per-site rand.Rand
// seeded with Seed() XOR hash(site name) at arm time. The i-th hit of a
// site therefore makes the same fire/no-fire decision on every run with
// the same seed, regardless of which goroutine performs the hit — the
// property the chaos harness relies on to reproduce a fault firing
// sequence from a seed alone.
//
// Site names follow the convention "pkg/site": the package that owns the
// seam, a slash, and a short kebab-case seam name (see ValidName).
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Environment variables honored by InitFromEnv.
const (
	// EnvPoints holds arm specs: "site=policy;site=policy", e.g.
	// "exec/scan=latency(5ms,0.3);cache/get=error(0.1)".
	EnvPoints = "DEX_FAILPOINTS"
	// EnvSeed holds the integer seed for probabilistic policies.
	EnvSeed = "DEX_FAULT_SEED"
)

// ErrInjected is the sentinel every injected error wraps, so call sites
// and the service layer can classify injected failures (errors.Is) apart
// from user errors.
var ErrInjected = errors.New("fault: injected error")

// Error is the concrete injected error, carrying the site that fired.
type Error struct {
	Site string
}

// Error implements the error interface.
func (e *Error) Error() string { return "fault: injected failure at " + e.Site }

// Unwrap makes errors.Is(err, ErrInjected) hold for every injected error.
func (e *Error) Unwrap() error { return ErrInjected }

// nameRE is the site naming convention: "pkg/site", both segments
// lowercase kebab-case starting with an alphanumeric.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]*/[a-z0-9][a-z0-9_-]*$`)

// ValidName reports whether a site name follows the pkg/site convention.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// Point is one named injection site. Create with Register (at package
// init); hit with Hit.
type Point struct {
	name  string
	pol   atomic.Pointer[policy]
	hits  atomic.Int64 // hits while armed
	fires atomic.Int64 // hits that actually fired
}

// Name returns the site name.
func (p *Point) Name() string { return p.name }

// Hit is the injection probe. Unarmed (the overwhelmingly common case) it
// is one atomic load returning nil. Armed, it consults the policy: it may
// return an injected error, sleep, panic, or do nothing, per the policy's
// kind, rate and remaining-fire budget.
func (p *Point) Hit() error {
	pol := p.pol.Load()
	if pol == nil {
		return nil
	}
	return p.apply(pol)
}

// Stats returns (hits, fires) counted since the site was last armed.
func (p *Point) Stats() (hits, fires int64) {
	return p.hits.Load(), p.fires.Load()
}

func (p *Point) apply(pol *policy) error {
	p.hits.Add(1)
	pol.mu.Lock()
	fire := true
	if pol.rate < 1 {
		// The draw happens on every armed hit, so the decision sequence is
		// indexed by hit order alone — deterministic in (seed, site).
		fire = pol.rng.Float64() < pol.rate
	}
	exhausted := false
	if fire && pol.left > 0 {
		pol.left--
		exhausted = pol.left == 0
	}
	pol.mu.Unlock()
	if exhausted {
		// Budget spent: restore the unarmed fast path. CompareAndSwap so a
		// concurrent re-Enable is never clobbered.
		p.pol.CompareAndSwap(pol, nil)
	}
	if !fire {
		return nil
	}
	p.fires.Add(1)
	switch pol.kind {
	case kindLatency:
		time.Sleep(pol.delay)
		return nil
	case kindPanic:
		panic(&Error{Site: p.name})
	default:
		return &Error{Site: p.name}
	}
}

// ---- policies ----

type policyKind uint8

const (
	kindError policyKind = iota
	kindLatency
	kindPanic
)

// policy is one armed behavior. rate is the per-hit firing probability;
// left is the remaining fire budget (<0 = unlimited); delay applies to
// latency policies. The rng is per-site and seeded at arm time.
type policy struct {
	kind  policyKind
	rate  float64
	delay time.Duration
	mu    sync.Mutex
	rng   *rand.Rand
	left  int64
}

// parsePolicy understands the spec mini-language:
//
//	error              always return an injected error
//	error-once         return an injected error on the first fire, then disarm
//	error(P)           return an injected error with probability P per hit
//	latency(D)         sleep D on every hit
//	latency(D,P)       sleep D with probability P per hit
//	panic              panic once (then disarm)
func parsePolicy(spec string) (*policy, error) {
	name := spec
	var args []string
	if i := strings.IndexByte(spec, '('); i >= 0 {
		if !strings.HasSuffix(spec, ")") {
			return nil, fmt.Errorf("fault: bad policy %q: unclosed parenthesis", spec)
		}
		name = spec[:i]
		inner := spec[i+1 : len(spec)-1]
		for _, a := range strings.Split(inner, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	pol := &policy{rate: 1, left: -1}
	parseRate := func(s string) error {
		r, err := strconv.ParseFloat(s, 64)
		if err != nil || r < 0 || r > 1 {
			return fmt.Errorf("fault: bad probability %q in %q", s, spec)
		}
		pol.rate = r
		return nil
	}
	switch name {
	case "error":
		pol.kind = kindError
		if len(args) > 1 {
			return nil, fmt.Errorf("fault: error takes at most one argument, got %q", spec)
		}
		if len(args) == 1 {
			if err := parseRate(args[0]); err != nil {
				return nil, err
			}
		}
	case "error-once":
		pol.kind = kindError
		pol.left = 1
		if len(args) > 0 {
			return nil, fmt.Errorf("fault: error-once takes no arguments, got %q", spec)
		}
	case "latency":
		pol.kind = kindLatency
		if len(args) < 1 || len(args) > 2 {
			return nil, fmt.Errorf("fault: latency wants (duration[,probability]), got %q", spec)
		}
		d, err := time.ParseDuration(args[0])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("fault: bad duration %q in %q", args[0], spec)
		}
		pol.delay = d
		if len(args) == 2 {
			if err := parseRate(args[1]); err != nil {
				return nil, err
			}
		}
	case "panic":
		pol.kind = kindPanic
		pol.left = 1
		if len(args) > 0 {
			return nil, fmt.Errorf("fault: panic takes no arguments, got %q", spec)
		}
	default:
		return nil, fmt.Errorf("fault: unknown policy %q (error|error-once|error(p)|latency(d[,p])|panic)", spec)
	}
	return pol, nil
}

// ---- registry ----

var (
	regMu  sync.Mutex
	points = map[string]*Point{}
	seed   atomic.Int64
)

// Register declares a new injection site. It is meant to run at package
// init (a package-level var), so misuse — an invalid name or a duplicate —
// panics rather than returning an error nothing would check.
func Register(name string) *Point {
	if !ValidName(name) {
		panic(fmt.Sprintf("fault: site name %q does not match the pkg/site convention", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := points[name]; dup {
		panic(fmt.Sprintf("fault: duplicate failpoint %q", name))
	}
	p := &Point{name: name}
	points[name] = p
	return p
}

// lookup finds a registered site.
func lookup(name string) (*Point, error) {
	regMu.Lock()
	p := points[name]
	regMu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("fault: unknown failpoint %q", name)
	}
	return p, nil
}

// SetSeed sets the seed that subsequently armed policies derive their
// per-site rand streams from. Arm order does not matter: each site's
// stream depends only on (seed, site name).
func SetSeed(s int64) { seed.Store(s) }

// Seed returns the current seed.
func Seed() int64 { return seed.Load() }

// siteSeed mixes the global seed with the site name so distinct sites draw
// independent, reproducible streams.
func siteSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed.Load() ^ int64(h.Sum64())
}

// Enable arms a registered site with a policy spec (see parsePolicy). The
// site's hit/fire counters reset, and its random stream restarts from the
// current seed — Enable is the reproducibility boundary.
func Enable(name, spec string) error {
	p, err := lookup(name)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(spec)
	if err != nil {
		return err
	}
	pol.rng = rand.New(rand.NewSource(siteSeed(name)))
	p.hits.Store(0)
	p.fires.Store(0)
	p.pol.Store(pol)
	return nil
}

// Disable disarms a site (no-op if unknown or already unarmed).
func Disable(name string) {
	regMu.Lock()
	p := points[name]
	regMu.Unlock()
	if p != nil {
		p.pol.Store(nil)
	}
}

// Reset disarms every site and zeroes all counters.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range points {
		p.pol.Store(nil)
		p.hits.Store(0)
		p.fires.Store(0)
	}
}

// Names returns every registered site name, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(points))
	for n := range points {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Active returns the names of currently armed sites, sorted.
func Active() []string {
	regMu.Lock()
	defer regMu.Unlock()
	var out []string
	for n, p := range points {
		if p.pol.Load() != nil {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// PointStats is one site's counters since it was last armed.
type PointStats struct {
	Hits  int64 `json:"hits"`
	Fires int64 `json:"fires"`
}

// Stats snapshots the counters of every site that has been hit while
// armed; sites with zero hits are omitted.
func Stats() map[string]PointStats {
	regMu.Lock()
	defer regMu.Unlock()
	out := map[string]PointStats{}
	for n, p := range points {
		if h := p.hits.Load(); h > 0 {
			out[n] = PointStats{Hits: h, Fires: p.fires.Load()}
		}
	}
	return out
}

// EnableAll arms sites from a semicolon-separated spec list, the
// DEX_FAILPOINTS format: "site=policy;site=policy". Empty entries are
// skipped; the first bad entry aborts with an error (already-armed
// entries stay armed).
func EnableAll(specs string) error {
	for _, ent := range strings.Split(specs, ";") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, spec, ok := strings.Cut(ent, "=")
		if !ok {
			return fmt.Errorf("fault: bad failpoint entry %q (want site=policy)", ent)
		}
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// InitFromEnv arms sites from DEX_FAILPOINTS (seeded by DEX_FAULT_SEED),
// the hook binaries call at startup. With the variable unset it does
// nothing and costs nothing.
func InitFromEnv() error {
	if s := os.Getenv(EnvSeed); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("fault: bad %s %q: %v", EnvSeed, s, err)
		}
		SetSeed(v)
	}
	specs := os.Getenv(EnvPoints)
	if specs == "" {
		return nil
	}
	return EnableAll(specs)
}
