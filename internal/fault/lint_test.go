package fault_test

import (
	"sort"
	"testing"

	"dex/internal/fault"

	// Blank imports pull in every package that registers failpoints, so the
	// lint below sees the full production registry. A new package with
	// failpoints must be added here or its sites escape the lint.
	_ "dex/internal/cache"
	_ "dex/internal/crack"
	_ "dex/internal/exec"
	_ "dex/internal/par"
	_ "dex/internal/rawload"
	_ "dex/internal/server"
	_ "dex/internal/shard"
	_ "dex/internal/storage"
)

// knownSites is the reviewed list of production failpoints. The test fails
// in both directions: a site registered but not listed here means an
// undocumented injection point slipped in; a site listed but not registered
// means a seam was removed and DESIGN.md / chaos schedules now reference a
// dead name.
var knownSites = []string{
	"cache/get",
	"cache/put",
	"client/transport",
	"crack/escalate",
	"exec/kernel-dispatch",
	"exec/scan",
	"par/claim",
	"rawload/read",
	"rawload/tokenize",
	"server/admit",
	"server/handler",
	"shard/exec",
	"shard/rpc",
	"storage/csv-read",
	"storage/segment-encode",
	"storage/zonemap-build",
}

// TestFailpointRegistryLint checks the global registry: every name is
// well-formed and unique, and the set of production sites (everything
// outside the test/ namespace this test file's siblings register) matches
// the reviewed list exactly.
func TestFailpointRegistryLint(t *testing.T) {
	names := fault.Names()
	seen := map[string]bool{}
	var prod []string
	for _, n := range names {
		if !fault.ValidName(n) {
			t.Errorf("registered failpoint %q does not match the naming convention pkg/site", n)
		}
		if seen[n] {
			t.Errorf("failpoint %q registered twice", n)
		}
		seen[n] = true
		if len(n) >= 5 && n[:5] == "test/" {
			continue // fault_test.go's own sites
		}
		prod = append(prod, n)
	}
	sort.Strings(prod)
	want := append([]string(nil), knownSites...)
	sort.Strings(want)
	if len(prod) != len(want) {
		t.Fatalf("production failpoints = %v, want %v", prod, want)
	}
	for i := range want {
		if prod[i] != want[i] {
			t.Fatalf("production failpoints = %v, want %v", prod, want)
		}
	}
}
