package fault_test

import (
	"errors"
	"os"
	"testing"
	"time"

	"dex/internal/fault"
)

// Test sites are registered once at init so the tests survive -count=N
// (Register panics on duplicates by design).
var (
	ptAlways  = fault.Register("test/always")
	ptOnce    = fault.Register("test/once")
	ptRate    = fault.Register("test/rate")
	ptLatency = fault.Register("test/latency")
	ptPanic   = fault.Register("test/panic")
	ptEnv     = fault.Register("test/env")
)

func TestUnarmedHitIsNil(t *testing.T) {
	fault.Reset()
	for i := 0; i < 1000; i++ {
		if err := ptAlways.Hit(); err != nil {
			t.Fatalf("unarmed hit %d returned %v", i, err)
		}
	}
	if h, f := ptAlways.Stats(); h != 0 || f != 0 {
		t.Fatalf("unarmed hits counted: hits=%d fires=%d", h, f)
	}
}

func TestErrorPolicyAlwaysFires(t *testing.T) {
	fault.Reset()
	if err := fault.Enable("test/always", "error"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable("test/always")
	for i := 0; i < 10; i++ {
		err := ptAlways.Hit()
		if err == nil {
			t.Fatalf("armed hit %d returned nil", i)
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("injected error does not wrap ErrInjected: %v", err)
		}
		var fe *fault.Error
		if !errors.As(err, &fe) || fe.Site != "test/always" {
			t.Fatalf("injected error lost its site: %v", err)
		}
	}
	if h, f := ptAlways.Stats(); h != 10 || f != 10 {
		t.Fatalf("got hits=%d fires=%d, want 10/10", h, f)
	}
}

func TestErrorOnceDisarmsAfterOneFire(t *testing.T) {
	fault.Reset()
	if err := fault.Enable("test/once", "error-once"); err != nil {
		t.Fatal(err)
	}
	if err := ptOnce.Hit(); err == nil {
		t.Fatal("first hit of error-once did not fire")
	}
	for i := 0; i < 5; i++ {
		if err := ptOnce.Hit(); err != nil {
			t.Fatalf("hit after the one fire returned %v", err)
		}
	}
	if len(fault.Active()) != 0 {
		t.Fatalf("error-once left sites armed: %v", fault.Active())
	}
}

// TestRateDeterminism is the property the chaos harness depends on: with
// the same seed, the i-th hit of a site makes the same decision, run after
// run — and a different seed gives a different sequence.
func TestRateDeterminism(t *testing.T) {
	pattern := func(seed int64) []bool {
		fault.Reset()
		fault.SetSeed(seed)
		if err := fault.Enable("test/rate", "error(0.5)"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = ptRate.Hit() != nil
		}
		fault.Disable("test/rate")
		return out
	}
	a, b := pattern(42), pattern(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across runs with the same seed", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate 0.5 fired %d/%d times; rng not engaged", fired, len(a))
	}
	c := pattern(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced the identical decision sequence")
	}
}

func TestLatencyPolicySleeps(t *testing.T) {
	fault.Reset()
	if err := fault.Enable("test/latency", "latency(30ms)"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable("test/latency")
	start := time.Now()
	if err := ptLatency.Hit(); err != nil {
		t.Fatalf("latency policy returned an error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency hit returned after %v, want >= ~30ms", d)
	}
}

func TestPanicPolicyPanicsOnce(t *testing.T) {
	fault.Reset()
	if err := fault.Enable("test/panic", "panic"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic policy did not panic")
			}
			fe, ok := r.(*fault.Error)
			if !ok || fe.Site != "test/panic" {
				t.Fatalf("panic value %v is not the site's *fault.Error", r)
			}
		}()
		ptPanic.Hit()
	}()
	if err := ptPanic.Hit(); err != nil {
		t.Fatalf("second hit after panic-once: %v", err)
	}
}

func TestEnableRejectsBadSpecs(t *testing.T) {
	fault.Reset()
	for _, spec := range []string{
		"", "explode", "error(2)", "error(-0.1)", "error(0.5", "latency",
		"latency(nope)", "latency(5ms,1.5)", "panic(1)", "error-once(0.5)",
	} {
		if err := fault.Enable("test/always", spec); err == nil {
			t.Errorf("Enable accepted bad spec %q", spec)
		}
	}
	if err := fault.Enable("no/such-site", "error"); err == nil {
		t.Error("Enable accepted an unregistered site")
	}
}

func TestInitFromEnv(t *testing.T) {
	fault.Reset()
	t.Setenv(fault.EnvSeed, "7")
	t.Setenv(fault.EnvPoints, "test/env=error(1.0); test/latency=latency(1ms,0.5)")
	if err := fault.InitFromEnv(); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	if fault.Seed() != 7 {
		t.Fatalf("seed = %d, want 7", fault.Seed())
	}
	got := fault.Active()
	if len(got) != 2 || got[0] != "test/env" || got[1] != "test/latency" {
		t.Fatalf("active sites = %v", got)
	}
	if err := ptEnv.Hit(); err == nil {
		t.Fatal("env-armed site did not fire")
	}

	os.Unsetenv(fault.EnvPoints)
	os.Unsetenv(fault.EnvSeed)
	fault.Reset()
	if err := fault.InitFromEnv(); err != nil {
		t.Fatalf("InitFromEnv with no env: %v", err)
	}
	if len(fault.Active()) != 0 {
		t.Fatalf("no-env init armed sites: %v", fault.Active())
	}
}

func TestStatsTracksHitsAndFires(t *testing.T) {
	fault.Reset()
	fault.SetSeed(1)
	if err := fault.Enable("test/rate", "error(0.3)"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable("test/rate")
	fires := 0
	for i := 0; i < 100; i++ {
		if ptRate.Hit() != nil {
			fires++
		}
	}
	st := fault.Stats()["test/rate"]
	if st.Hits != 100 || st.Fires != int64(fires) {
		t.Fatalf("stats = %+v, want hits=100 fires=%d", st, fires)
	}
}

// BenchmarkHitUnarmed is the number behind the "<3% with failpoints
// inactive" claim: the unarmed fast path is a single atomic pointer load,
// so even the hottest instrumented loops (per-morsel scan claims) pay
// low-single-digit nanoseconds per hit.
func BenchmarkHitUnarmed(b *testing.B) {
	fault.Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ptAlways.Hit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHitArmedRate prices the armed slow path (seeded rng draw under
// the point lock) for comparison.
func BenchmarkHitArmedRate(b *testing.B) {
	fault.Reset()
	fault.SetSeed(1)
	if err := fault.Enable("test/rate", "error(0.0)"); err != nil {
		b.Fatal(err)
	}
	defer fault.Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ptRate.Hit()
	}
}
