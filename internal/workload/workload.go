// Package workload generates the deterministic synthetic datasets and query
// traces the experiment harness drives: Zipf-skewed fact tables, Gaussian
// sky catalogs, trading ticks, range-query streams with several locality
// patterns, and session logs — stand-ins for the proprietary datasets (SDSS,
// production logs, TPC-H clusters) used by the surveyed papers, controlling
// exactly the distributional properties those experiments depend on.
package workload

import (
	"fmt"
	"math/rand"

	"dex/internal/storage"
)

// UniformInts returns n integers uniform on [0, domain).
func UniformInts(rng *rand.Rand, n, domain int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(domain))
	}
	return out
}

// ZipfInts returns n integers on [0, domain) with Zipf skew s (>1).
func ZipfInts(rng *rand.Rand, n, domain int, s float64) []int64 {
	if s <= 1 {
		s = 1.1
	}
	z := rand.NewZipf(rng, s, 1, uint64(domain-1))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64())
	}
	return out
}

// GaussianMixture returns n floats drawn from equally weighted Gaussians at
// the given centers with common sigma.
func GaussianMixture(rng *rand.Rand, n int, centers []float64, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		out[i] = c + rng.NormFloat64()*sigma
	}
	return out
}

// RandomWalk returns an n-step random walk with the given step sigma.
func RandomWalk(rng *rand.Rand, n int, sigma float64) []float64 {
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64() * sigma
		out[i] = v
	}
	return out
}

// Range is one range query [Lo, Hi).
type Range struct{ Lo, Hi int64 }

// RandomRanges returns nq uniformly placed range queries of the given width
// over [0, domain).
func RandomRanges(rng *rand.Rand, nq, domain int, width int64) []Range {
	out := make([]Range, nq)
	for i := range out {
		lo := int64(rng.Intn(domain))
		out[i] = Range{Lo: lo, Hi: lo + width}
	}
	return out
}

// SequentialRanges returns nq consecutive non-overlapping ranges sweeping
// [0, domain) left to right — the adversarial pattern for standard cracking.
func SequentialRanges(nq, domain int) []Range {
	out := make([]Range, nq)
	width := int64(domain / nq)
	if width == 0 {
		width = 1
	}
	for i := range out {
		lo := int64(i) * width
		out[i] = Range{Lo: lo, Hi: lo + width}
	}
	return out
}

// ZoomRanges returns nq ranges that progressively zoom into a focus point —
// the drill-down locality pattern of exploratory sessions.
func ZoomRanges(rng *rand.Rand, nq, domain int) []Range {
	out := make([]Range, nq)
	focus := int64(rng.Intn(domain))
	width := int64(domain)
	for i := range out {
		if width > 4 {
			width = width * 3 / 4
		}
		lo := focus - width/2
		if lo < 0 {
			lo = 0
		}
		out[i] = Range{Lo: lo, Hi: lo + width}
	}
	return out
}

// Sales builds the fact table the cube/SeeDB/AQP experiments share:
// region × product × quarter dimensions, Zipf-skewed product popularity,
// amount and qty measures.
func Sales(rng *rand.Rand, n int) (*storage.Table, error) {
	regions := []string{"east", "west", "north", "south"}
	quarters := []string{"q1", "q2", "q3", "q4"}
	nprod := 20
	prodPick := rand.NewZipf(rng, 1.3, 1, uint64(nprod-1))
	rv := make([]string, n)
	pv := make([]string, n)
	qv := make([]string, n)
	av := make([]float64, n)
	cv := make([]int64, n)
	for i := 0; i < n; i++ {
		rv[i] = regions[rng.Intn(len(regions))]
		p := int(prodPick.Uint64())
		pv[i] = fmt.Sprintf("p%02d", p)
		qv[i] = quarters[rng.Intn(len(quarters))]
		base := 50 + 10*float64(p)
		av[i] = base + rng.NormFloat64()*15
		cv[i] = int64(1 + rng.Intn(9))
	}
	return storage.FromColumns("sales", storage.Schema{
		{Name: "region", Type: storage.TString},
		{Name: "product", Type: storage.TString},
		{Name: "quarter", Type: storage.TString},
		{Name: "amount", Type: storage.TFloat},
		{Name: "qty", Type: storage.TInt},
	}, []storage.Column{
		storage.NewStringColumn(rv), storage.NewStringColumn(pv),
		storage.NewStringColumn(qv), storage.NewFloatColumn(av),
		storage.NewIntColumn(cv),
	})
}

// SkyCatalog builds a synthetic astronomical catalog: right ascension and
// declination uniform over the sky patch, magnitudes, and a redshift with
// planted high-redshift clusters — the "astronomer looking for interesting
// regions" workload from the tutorial's introduction.
func SkyCatalog(rng *rand.Rand, n int) (*storage.Table, error) {
	ra := make([]float64, n)
	dec := make([]float64, n)
	mag := make([]float64, n)
	z := make([]float64, n)
	cls := make([]string, n)
	classes := []string{"star", "galaxy", "quasar"}
	type cluster struct{ ra, dec, z float64 }
	clusters := []cluster{{30, 10, 2.5}, {70, -20, 3.2}}
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.05 { // 5% of objects in interesting clusters
			c := clusters[rng.Intn(len(clusters))]
			ra[i] = c.ra + rng.NormFloat64()*2
			dec[i] = c.dec + rng.NormFloat64()*2
			z[i] = c.z + rng.NormFloat64()*0.1
			cls[i] = "quasar"
		} else {
			ra[i] = rng.Float64() * 90
			dec[i] = rng.Float64()*90 - 45
			z[i] = rng.ExpFloat64() * 0.3
			cls[i] = classes[rng.Intn(2)]
		}
		mag[i] = 14 + rng.Float64()*10
	}
	return storage.FromColumns("sky", storage.Schema{
		{Name: "ra", Type: storage.TFloat},
		{Name: "dec", Type: storage.TFloat},
		{Name: "mag", Type: storage.TFloat},
		{Name: "z", Type: storage.TFloat},
		{Name: "class", Type: storage.TString},
	}, []storage.Column{
		storage.NewFloatColumn(ra), storage.NewFloatColumn(dec),
		storage.NewFloatColumn(mag), storage.NewFloatColumn(z),
		storage.NewStringColumn(cls),
	})
}

// Ticks builds a trading-tick table: symbol, random-walk price, Zipf-ish
// volume, monotone timestamp.
func Ticks(rng *rand.Rand, n int) (*storage.Table, error) {
	symbols := []string{"AAA", "BBB", "CCC", "DDD", "EEE"}
	prices := map[string]float64{}
	for _, s := range symbols {
		prices[s] = 50 + rng.Float64()*100
	}
	sym := make([]string, n)
	price := make([]float64, n)
	vol := make([]int64, n)
	ts := make([]int64, n)
	for i := 0; i < n; i++ {
		s := symbols[rng.Intn(len(symbols))]
		prices[s] *= 1 + rng.NormFloat64()*0.002
		sym[i] = s
		price[i] = prices[s]
		vol[i] = int64(1 + rng.ExpFloat64()*100)
		ts[i] = int64(i)
	}
	return storage.FromColumns("ticks", storage.Schema{
		{Name: "symbol", Type: storage.TString},
		{Name: "price", Type: storage.TFloat},
		{Name: "volume", Type: storage.TInt},
		{Name: "ts", Type: storage.TInt},
	}, []storage.Column{
		storage.NewStringColumn(sym), storage.NewFloatColumn(price),
		storage.NewIntColumn(vol), storage.NewIntColumn(ts),
	})
}

// SeriesCollection builds n random-walk series of the given length for the
// time-series indexing experiments.
func SeriesCollection(rng *rand.Rand, n, length int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = RandomWalk(rng, length, 1)
	}
	return out
}
