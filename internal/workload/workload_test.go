package workload

import (
	"math/rand"
	"testing"
)

func TestUniformAndZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := UniformInts(rng, 10000, 100)
	for _, v := range u {
		if v < 0 || v >= 100 {
			t.Fatalf("uniform out of range: %d", v)
		}
	}
	z := ZipfInts(rng, 10000, 100, 1.5)
	counts := map[int64]int{}
	for _, v := range z {
		if v < 0 || v >= 100 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] < counts[50]*2 {
		t.Errorf("zipf not skewed: c0=%d c50=%d", counts[0], counts[50])
	}
	// s<=1 is coerced, not a panic.
	_ = ZipfInts(rng, 10, 10, 0.5)
}

func TestGaussianMixtureAndWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := GaussianMixture(rng, 1000, []float64{-10, 10}, 1)
	near := 0
	for _, v := range g {
		if v > -13 && v < -7 || v > 7 && v < 13 {
			near++
		}
	}
	if near < 950 {
		t.Errorf("mixture mass near centers = %d/1000", near)
	}
	w := RandomWalk(rng, 100, 1)
	if len(w) != 100 {
		t.Error("walk length")
	}
}

func TestRangePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rr := RandomRanges(rng, 50, 1000, 10)
	for _, r := range rr {
		if r.Hi-r.Lo != 10 {
			t.Fatalf("width = %d", r.Hi-r.Lo)
		}
	}
	sr := SequentialRanges(10, 1000)
	for i := 1; i < len(sr); i++ {
		if sr[i].Lo != sr[i-1].Hi {
			t.Fatal("sequential ranges not adjacent")
		}
	}
	zr := ZoomRanges(rng, 20, 1000)
	for i := 1; i < len(zr); i++ {
		if zr[i].Hi-zr[i].Lo > zr[i-1].Hi-zr[i-1].Lo {
			t.Fatal("zoom ranges should narrow")
		}
	}
}

func TestTables(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sales, err := Sales(rng, 500)
	if err != nil || sales.NumRows() != 500 || sales.NumCols() != 5 {
		t.Fatalf("sales = %v, %v", sales, err)
	}
	sky, err := SkyCatalog(rng, 500)
	if err != nil || sky.NumRows() != 500 {
		t.Fatalf("sky err = %v", err)
	}
	// Planted quasar clusters exist.
	cc, _ := sky.ColumnByName("class")
	quasars := 0
	for i := 0; i < sky.NumRows(); i++ {
		if cc.Value(i).S == "quasar" {
			quasars++
		}
	}
	if quasars == 0 {
		t.Error("no quasars planted")
	}
	ticks, err := Ticks(rng, 500)
	if err != nil || ticks.NumRows() != 500 {
		t.Fatalf("ticks err = %v", err)
	}
	tsc, _ := ticks.ColumnByName("ts")
	for i := 1; i < 500; i++ {
		if tsc.Value(i).I <= tsc.Value(i-1).I {
			t.Fatal("timestamps not monotone")
		}
	}
}

func TestSeriesCollection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ss := SeriesCollection(rng, 10, 64)
	if len(ss) != 10 || len(ss[0]) != 64 {
		t.Fatal("series dims")
	}
}

func TestDeterminism(t *testing.T) {
	a := UniformInts(rand.New(rand.NewSource(42)), 100, 1000)
	b := UniformInts(rand.New(rand.NewSource(42)), 100, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the workload")
		}
	}
}
