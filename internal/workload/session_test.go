package workload

import (
	"math/rand"
	"testing"

	"dex/internal/exec"
	"dex/internal/sqlparse"
)

// TestExplorationSQLParsesAndRuns checks every generated statement is
// valid mini-SQL over the Sales schema and actually executes, and that the
// generator is deterministic per seed while differing across seeds.
func TestExplorationSQLParsesAndRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sales, err := Sales(rng, 2000)
	if err != nil {
		t.Fatal(err)
	}
	stmts := ExplorationSQL(rand.New(rand.NewSource(1)), 40)
	if len(stmts) != 40 {
		t.Fatalf("got %d statements, want 40", len(stmts))
	}
	for i, sql := range stmts {
		st, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("statement %d %q: %v", i, sql, err)
		}
		q := sqlparse.ExpandStar(st.Query, sales.Schema())
		if _, err := exec.Execute(sales, q); err != nil {
			t.Fatalf("statement %d %q: %v", i, sql, err)
		}
	}

	again := ExplorationSQL(rand.New(rand.NewSource(1)), 40)
	for i := range stmts {
		if stmts[i] != again[i] {
			t.Fatalf("statement %d differs across identical seeds", i)
		}
	}
	other := ExplorationSQL(rand.New(rand.NewSource(2)), 40)
	same := 0
	for i := range stmts {
		if stmts[i] == other[i] {
			same++
		}
	}
	if same == len(stmts) {
		t.Fatal("different seeds produced identical sessions")
	}
}
