package workload

import (
	"fmt"
	"math/rand"
)

// ExplorationSQL generates one synthetic exploration session against the
// Sales table: n SQL statements following the overview → drill-down →
// refine arc that interactive-exploration benchmarks (IDEBench, the UMD
// adaptive-exploration traces) model. The session opens with a broad
// group-by overview, then zooms: each drill-down narrows the amount range
// around a focus point (the ZoomRanges locality pattern), switches grouping
// dimension occasionally, and sprinkles scalar-aggregate "checks" the way a
// user pins a number mid-exploration.
//
// Statements are plain mini-SQL over the Sales schema (region, product,
// quarter, amount, qty), so any execution mode can replay them. The
// generator is deterministic in rng: one seed → one session, which load
// tests rely on to make different clients replay different but
// reproducible sessions.
func ExplorationSQL(rng *rand.Rand, n int) []string {
	dims := []string{"region", "product", "quarter"}
	measures := []string{"amount", "qty"}
	aggs := []string{"sum", "avg", "count", "max"}
	out := make([]string, 0, n)

	// The drill-down state: a closing window over amount around a focus.
	lo, hi := 50.0, 260.0
	focus := 80 + rng.Float64()*120
	dim := dims[rng.Intn(len(dims))]

	for i := 0; i < n; i++ {
		switch {
		case i == 0 || rng.Float64() < 0.15:
			// Overview: full-table group-by on a (possibly new) dimension.
			dim = dims[rng.Intn(len(dims))]
			agg := aggs[rng.Intn(len(aggs))]
			m := measures[rng.Intn(len(measures))]
			out = append(out, fmt.Sprintf(
				"SELECT %s, %s(%s) FROM sales GROUP BY %s", dim, agg, m, dim))
			// Re-open the window: a new overview restarts the drill-down.
			lo, hi = 50.0, 260.0
			focus = 80 + rng.Float64()*120
		case rng.Float64() < 0.25:
			// Pin a number: scalar aggregate over the current window.
			agg := aggs[rng.Intn(len(aggs))]
			out = append(out, fmt.Sprintf(
				"SELECT %s(amount), count(*) FROM sales WHERE amount >= %.1f AND amount < %.1f",
				agg, lo, hi))
		default:
			// Drill down: shrink the window toward the focus and group.
			width := (hi - lo) * 0.75
			if width < 4 {
				width = 4
			}
			lo = focus - width/2
			hi = focus + width/2
			agg := aggs[rng.Intn(len(aggs))]
			m := measures[rng.Intn(len(measures))]
			out = append(out, fmt.Sprintf(
				"SELECT %s, %s(%s) FROM sales WHERE amount >= %.1f AND amount < %.1f GROUP BY %s",
				dim, agg, m, lo, hi, dim))
		}
	}
	return out
}
