package olap

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dex/internal/cache"
)

// View identifies one cube view in a drill-down session: a set of fixed
// dimension values plus the dimension currently grouped on.
type View struct {
	Fixed    map[string]string
	GroupDim string
}

// Key renders a canonical cache key for the view.
func (v View) Key() string {
	keys := make([]string, 0, len(v.Fixed))
	for k := range v.Fixed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, v.Fixed[k])
	}
	b.WriteString("@")
	b.WriteString(v.GroupDim)
	return b.String()
}

// clone deep-copies the view.
func (v View) clone() View {
	f := make(map[string]string, len(v.Fixed))
	for k, val := range v.Fixed {
		f[k] = val
	}
	return View{Fixed: f, GroupDim: v.GroupDim}
}

// Session is an interactive drill-down session over a cube with optional
// speculative execution: after each view is served, the session precomputes
// the views a drill-down into each visible cell would produce (the DICE
// strategy), so the user's next click is usually a cache hit.
type Session struct {
	cube  *Cube
	cache *cache.LRU[string, []Cell]
	// Speculate enables child-view precomputation after each request.
	Speculate bool
	// SpeculateBudget caps speculative views per request.
	SpeculateBudget int

	DemandViews      int64
	SpeculativeViews int64
}

// NewSession creates a session; cacheViews bounds the view cache.
func NewSession(cube *Cube, cacheViews int, speculate bool) (*Session, error) {
	c, err := cache.New[string, []Cell](int64(cacheViews))
	if err != nil {
		return nil, err
	}
	return &Session{cube: cube, cache: c, Speculate: speculate, SpeculateBudget: 16}, nil
}

// Request serves a view through the cache, then (optionally) speculates on
// its children. It reports whether the view was a cache hit.
func (s *Session) Request(v View) ([]Cell, bool, error) {
	key := v.Key()
	if cells, ok := s.cache.Get(key); ok {
		if s.Speculate {
			s.speculate(v, cells)
		}
		return cells, true, nil
	}
	cells, err := s.cube.Aggregate([]string{v.GroupDim}, v.Fixed)
	if err != nil {
		return nil, false, err
	}
	s.DemandViews++
	s.cache.Put(key, cells, 1)
	if s.Speculate {
		s.speculate(v, cells)
	}
	return cells, false, nil
}

// speculate precomputes the drill-down children of the served view: for
// each cell value of the current group dimension, fixing it and grouping by
// the next unfixed dimension.
func (s *Session) speculate(v View, cells []Cell) {
	next := s.nextDim(v)
	if next == "" {
		return
	}
	budget := s.SpeculateBudget
	for _, cell := range cells {
		if budget <= 0 {
			return
		}
		child := v.clone()
		child.Fixed[v.GroupDim] = cell.Coords[0]
		child.GroupDim = next
		key := child.Key()
		if s.cache.Contains(key) {
			continue
		}
		res, err := s.cube.Aggregate([]string{child.GroupDim}, child.Fixed)
		if err != nil {
			continue
		}
		s.SpeculativeViews++
		s.cache.Put(key, res, 1)
		budget--
	}
}

// nextDim picks the first dimension that is neither fixed nor the current
// group dimension.
func (s *Session) nextDim(v View) string {
	for _, d := range s.cube.dims {
		if d == v.GroupDim {
			continue
		}
		if _, ok := v.Fixed[d]; ok {
			continue
		}
		return d
	}
	return ""
}

// DrillDown returns the child view reached by clicking value in the current
// view (fix it, group by the next dimension). ok is false at the bottom of
// the lattice.
func (s *Session) DrillDown(v View, value string) (View, bool) {
	next := s.nextDim(v)
	if next == "" {
		return v, false
	}
	child := v.clone()
	child.Fixed[v.GroupDim] = value
	child.GroupDim = next
	return child, true
}

// CacheStats exposes the view-cache counters.
func (s *Session) CacheStats() cache.Stats { return s.cache.Stats() }

// Exception is one surprising cell found by discovery-driven exploration.
type Exception struct {
	Row, Col int
	Value    float64
	Expected float64
	// Score is the standardized residual |value-expected|/sigma.
	Score float64
}

// Exceptions performs discovery-driven exception detection [54] on a 2-D
// view: it fits the additive model value ~ overall + rowEffect + colEffect
// and flags cells whose standardized residual exceeds threshold (2.5 is the
// classic choice). Rows/columns with no data are ignored.
func Exceptions(grid [][]float64, threshold float64) []Exception {
	nr := len(grid)
	if nr == 0 {
		return nil
	}
	nc := len(grid[0])
	if nc == 0 {
		return nil
	}
	var overall float64
	for _, row := range grid {
		for _, v := range row {
			overall += v
		}
	}
	overall /= float64(nr * nc)
	rowEff := make([]float64, nr)
	colEff := make([]float64, nc)
	for i, row := range grid {
		var m float64
		for _, v := range row {
			m += v
		}
		rowEff[i] = m/float64(nc) - overall
	}
	for j := 0; j < nc; j++ {
		var m float64
		for i := 0; i < nr; i++ {
			m += grid[i][j]
		}
		colEff[j] = m/float64(nr) - overall
	}
	// Robust residual scale: the median absolute deviation. An RMS scale
	// would be inflated by the very exceptions we are hunting (masking),
	// so a handful of large anomalies could hide themselves.
	resids := make([]float64, 0, nr*nc)
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			r := grid[i][j] - (overall + rowEff[i] + colEff[j])
			resids = append(resids, math.Abs(r))
		}
	}
	sorted := append([]float64(nil), resids...)
	sort.Float64s(sorted)
	mad := sorted[len(sorted)/2]
	sigma := 1.4826 * mad // consistent with the normal sigma
	if sigma == 0 {
		return nil
	}
	var out []Exception
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			exp := overall + rowEff[i] + colEff[j]
			score := math.Abs(grid[i][j]-exp) / sigma
			if score >= threshold {
				out = append(out, Exception{Row: i, Col: j, Value: grid[i][j], Expected: exp, Score: score})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out
}

// ViewGrid pivots a 2-D cuboid (group by rowDim, colDim) into a dense grid
// of the chosen statistic plus the row/column labels, for Exceptions and
// for rendering.
func (c *Cube) ViewGrid(rowDim, colDim string, avg bool) ([][]float64, []string, []string, error) {
	cells, err := c.Aggregate([]string{rowDim, colDim}, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	rows, err := c.Values(rowDim)
	if err != nil {
		return nil, nil, nil, err
	}
	cols, err := c.Values(colDim)
	if err != nil {
		return nil, nil, nil, err
	}
	ri := map[string]int{}
	for i, r := range rows {
		ri[r] = i
	}
	ci := map[string]int{}
	for i, col := range cols {
		ci[col] = i
	}
	grid := make([][]float64, len(rows))
	for i := range grid {
		grid[i] = make([]float64, len(cols))
	}
	for _, cell := range cells {
		i, j := ri[cell.Coords[0]], ci[cell.Coords[1]]
		if avg {
			grid[i][j] = cell.Avg()
		} else {
			grid[i][j] = cell.Sum
		}
	}
	return grid, rows, cols, nil
}
