// Package olap implements the data-cube exploration middleware the tutorial
// surveys: cube construction and lattice roll-ups [37], interactive
// drill-down sessions with speculative execution of likely next views
// (DICE [35], distributed cube exploration [37]), and discovery-driven
// exception detection that steers users toward surprising cells [54,55].
package olap

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dex/internal/storage"
)

// Package-level sentinel errors.
var (
	ErrNoSuchDim  = errors.New("olap: no such dimension")
	ErrBadMeasure = errors.New("olap: measure must be numeric")
	ErrNoDims     = errors.New("olap: at least one dimension required")
)

// Cell is one cube cell: coordinates along the requested dimensions plus
// the aggregated measure.
type Cell struct {
	Coords []string
	Sum    float64
	Count  float64
}

// Avg returns Sum/Count (NaN-free: 0 for empty cells).
func (c Cell) Avg() float64 {
	if c.Count == 0 {
		return 0
	}
	return c.Sum / c.Count
}

// Cube pre-aggregates a table at the finest granularity over a set of
// categorical dimensions, and answers any coarser group-by by rolling up
// base cells. Cuboids (lattice nodes) are computed lazily and cached.
type Cube struct {
	dims    []string
	measure string
	baseKey []string // per base cell: its full coordinate key parts
	base    []Cell   // finest-granularity cells
	cuboids map[string][]Cell
	// BaseCellsScanned counts roll-up work for the speculation experiments.
	BaseCellsScanned int64
}

// Build constructs the cube from the table. Dimension columns are used as
// categorical values via their string form; measure must be numeric.
func Build(t *storage.Table, dims []string, measure string) (*Cube, error) {
	if len(dims) == 0 {
		return nil, ErrNoDims
	}
	dcols := make([]storage.Column, len(dims))
	for i, d := range dims {
		c, err := t.ColumnByName(d)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", d, ErrNoSuchDim)
		}
		dcols[i] = c
	}
	mcol, err := t.ColumnByName(measure)
	if err != nil {
		return nil, err
	}
	if mcol.Type() == storage.TString {
		return nil, fmt.Errorf("%q: %w", measure, ErrBadMeasure)
	}
	agg := map[string]*Cell{}
	var order []string
	var kb strings.Builder
	for r := 0; r < t.NumRows(); r++ {
		kb.Reset()
		coords := make([]string, len(dims))
		for i, dc := range dcols {
			coords[i] = dc.Value(r).String()
			kb.WriteString(coords[i])
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		cell, ok := agg[k]
		if !ok {
			cell = &Cell{Coords: coords}
			agg[k] = cell
			order = append(order, k)
		}
		cell.Sum += mcol.Value(r).AsFloat()
		cell.Count++
	}
	sort.Strings(order)
	c := &Cube{dims: append([]string(nil), dims...), measure: measure, cuboids: map[string][]Cell{}}
	for _, k := range order {
		c.base = append(c.base, *agg[k])
	}
	return c, nil
}

// Dims returns the cube's dimension names.
func (c *Cube) Dims() []string { return append([]string(nil), c.dims...) }

// Measure returns the measure column name.
func (c *Cube) Measure() string { return c.measure }

// NumBaseCells returns the count of finest-granularity cells.
func (c *Cube) NumBaseCells() int { return len(c.base) }

func (c *Cube) dimIndex(name string) int {
	for i, d := range c.dims {
		if d == name {
			return i
		}
	}
	return -1
}

// Aggregate returns the cuboid grouped by the given dimensions (roll-up of
// everything else), optionally restricted by fixed dimension values.
// Results are sorted by coordinates. Cuboids without filters are cached.
func (c *Cube) Aggregate(groupDims []string, fixed map[string]string) ([]Cell, error) {
	gidx := make([]int, len(groupDims))
	for i, g := range groupDims {
		d := c.dimIndex(g)
		if d < 0 {
			return nil, fmt.Errorf("%q: %w", g, ErrNoSuchDim)
		}
		gidx[i] = d
	}
	type fix struct {
		dim int
		val string
	}
	var fixes []fix
	for d, v := range fixed {
		di := c.dimIndex(d)
		if di < 0 {
			return nil, fmt.Errorf("%q: %w", d, ErrNoSuchDim)
		}
		fixes = append(fixes, fix{di, v})
	}
	sort.Slice(fixes, func(a, b int) bool { return fixes[a].dim < fixes[b].dim })

	cacheKey := ""
	if len(fixes) == 0 {
		cacheKey = strings.Join(groupDims, "\x1f")
		if cached, ok := c.cuboids[cacheKey]; ok {
			return cached, nil
		}
	}

	agg := map[string]*Cell{}
	var order []string
	var kb strings.Builder
	for i := range c.base {
		cell := &c.base[i]
		c.BaseCellsScanned++
		match := true
		for _, f := range fixes {
			if cell.Coords[f.dim] != f.val {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		kb.Reset()
		coords := make([]string, len(gidx))
		for j, d := range gidx {
			coords[j] = cell.Coords[d]
			kb.WriteString(coords[j])
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		out, ok := agg[k]
		if !ok {
			out = &Cell{Coords: coords}
			agg[k] = out
			order = append(order, k)
		}
		out.Sum += cell.Sum
		out.Count += cell.Count
	}
	sort.Strings(order)
	res := make([]Cell, 0, len(order))
	for _, k := range order {
		res = append(res, *agg[k])
	}
	if cacheKey != "" {
		c.cuboids[cacheKey] = res
	}
	return res, nil
}

// Values returns the sorted distinct values of a dimension.
func (c *Cube) Values(dim string) ([]string, error) {
	d := c.dimIndex(dim)
	if d < 0 {
		return nil, fmt.Errorf("%q: %w", dim, ErrNoSuchDim)
	}
	seen := map[string]bool{}
	var out []string
	for i := range c.base {
		v := c.base[i].Coords[d]
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Total returns the all-up aggregate (the apex cuboid).
func (c *Cube) Total() Cell {
	out := Cell{}
	for i := range c.base {
		out.Sum += c.base[i].Sum
		out.Count += c.base[i].Count
	}
	return out
}
