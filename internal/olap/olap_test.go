package olap

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dex/internal/storage"
)

// mkRetail builds a table with dims region/product/quarter and measure amt.
func mkRetail(tb testing.TB, n int, seed int64) *storage.Table {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	regions := []string{"east", "west", "north", "south"}
	products := []string{"p1", "p2", "p3", "p4", "p5"}
	quarters := []string{"q1", "q2", "q3", "q4"}
	rv := make([]string, n)
	pv := make([]string, n)
	qv := make([]string, n)
	av := make([]float64, n)
	for i := 0; i < n; i++ {
		rv[i] = regions[rng.Intn(len(regions))]
		pv[i] = products[rng.Intn(len(products))]
		qv[i] = quarters[rng.Intn(len(quarters))]
		av[i] = 100 + rng.NormFloat64()*10
	}
	t, err := storage.FromColumns("retail", storage.Schema{
		{Name: "region", Type: storage.TString},
		{Name: "product", Type: storage.TString},
		{Name: "quarter", Type: storage.TString},
		{Name: "amt", Type: storage.TFloat},
	}, []storage.Column{
		storage.NewStringColumn(rv), storage.NewStringColumn(pv),
		storage.NewStringColumn(qv), storage.NewFloatColumn(av),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

func TestBuildAndTotal(t *testing.T) {
	tbl := mkRetail(t, 3000, 1)
	c, err := Build(tbl, []string{"region", "product", "quarter"}, "amt")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumBaseCells() == 0 || c.NumBaseCells() > 80 {
		t.Errorf("base cells = %d", c.NumBaseCells())
	}
	total := c.Total()
	if total.Count != 3000 {
		t.Errorf("total count = %v", total.Count)
	}
	ac, _ := tbl.ColumnByName("amt")
	var want float64
	for i := 0; i < tbl.NumRows(); i++ {
		want += ac.Value(i).AsFloat()
	}
	if math.Abs(total.Sum-want) > 1e-6 {
		t.Errorf("total sum = %v, want %v", total.Sum, want)
	}
}

func TestBuildErrors(t *testing.T) {
	tbl := mkRetail(t, 100, 2)
	if _, err := Build(tbl, nil, "amt"); !errors.Is(err, ErrNoDims) {
		t.Errorf("no dims err = %v", err)
	}
	if _, err := Build(tbl, []string{"nope"}, "amt"); !errors.Is(err, ErrNoSuchDim) {
		t.Errorf("bad dim err = %v", err)
	}
	if _, err := Build(tbl, []string{"region"}, "product"); !errors.Is(err, ErrBadMeasure) {
		t.Errorf("text measure err = %v", err)
	}
}

func TestRollUpConsistency(t *testing.T) {
	tbl := mkRetail(t, 5000, 3)
	c, err := Build(tbl, []string{"region", "product", "quarter"}, "amt")
	if err != nil {
		t.Fatal(err)
	}
	// Sum over any cuboid equals the apex total.
	total := c.Total().Sum
	for _, dims := range [][]string{
		{"region"}, {"product"}, {"quarter"},
		{"region", "product"}, {"product", "quarter"},
		{"region", "product", "quarter"},
	} {
		cells, err := c.Aggregate(dims, nil)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, cell := range cells {
			s += cell.Sum
		}
		if math.Abs(s-total) > 1e-6 {
			t.Errorf("cuboid %v sum = %v, want %v", dims, s, total)
		}
	}
}

func TestAggregateWithFixed(t *testing.T) {
	tbl := mkRetail(t, 4000, 4)
	c, _ := Build(tbl, []string{"region", "product", "quarter"}, "amt")
	all, err := c.Aggregate([]string{"product"}, map[string]string{"region": "east"})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against brute force.
	rc, _ := tbl.ColumnByName("region")
	pc, _ := tbl.ColumnByName("product")
	ac, _ := tbl.ColumnByName("amt")
	want := map[string]float64{}
	for i := 0; i < tbl.NumRows(); i++ {
		if rc.Value(i).S == "east" {
			want[pc.Value(i).S] += ac.Value(i).AsFloat()
		}
	}
	if len(all) != len(want) {
		t.Fatalf("groups = %d vs %d", len(all), len(want))
	}
	for _, cell := range all {
		if math.Abs(cell.Sum-want[cell.Coords[0]]) > 1e-6 {
			t.Errorf("east/%s = %v, want %v", cell.Coords[0], cell.Sum, want[cell.Coords[0]])
		}
	}
	if _, err := c.Aggregate([]string{"product"}, map[string]string{"bogus": "x"}); !errors.Is(err, ErrNoSuchDim) {
		t.Errorf("bad fixed dim err = %v", err)
	}
}

func TestCuboidCaching(t *testing.T) {
	tbl := mkRetail(t, 1000, 5)
	c, _ := Build(tbl, []string{"region", "product"}, "amt")
	if _, err := c.Aggregate([]string{"region"}, nil); err != nil {
		t.Fatal(err)
	}
	scanned := c.BaseCellsScanned
	if _, err := c.Aggregate([]string{"region"}, nil); err != nil {
		t.Fatal(err)
	}
	if c.BaseCellsScanned != scanned {
		t.Error("repeated unfiltered cuboid should be served from cache")
	}
}

func TestValues(t *testing.T) {
	tbl := mkRetail(t, 1000, 6)
	c, _ := Build(tbl, []string{"region", "product"}, "amt")
	vs, err := c.Values("region")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 || vs[0] != "east" {
		t.Errorf("values = %v", vs)
	}
	if _, err := c.Values("zzz"); !errors.Is(err, ErrNoSuchDim) {
		t.Errorf("err = %v", err)
	}
}

func TestSessionDrillDownSpeculation(t *testing.T) {
	tbl := mkRetail(t, 5000, 7)
	c, _ := Build(tbl, []string{"region", "product", "quarter"}, "amt")
	s, err := NewSession(c, 256, true)
	if err != nil {
		t.Fatal(err)
	}
	v := View{Fixed: map[string]string{}, GroupDim: "region"}
	cells, hit, err := s.Request(v)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first view can't be a hit")
	}
	if len(cells) != 4 {
		t.Errorf("region view cells = %d", len(cells))
	}
	// Drill into east: should be precomputed.
	child, ok := s.DrillDown(v, "east")
	if !ok {
		t.Fatal("drill-down should be possible")
	}
	if _, hit, err := s.Request(child); err != nil || !hit {
		t.Errorf("drill-down hit = %v (err %v), want speculative hit", hit, err)
	}
	// And one more level.
	grand, ok := s.DrillDown(child, "p1")
	if !ok {
		t.Fatal("second drill-down should be possible")
	}
	if _, hit, err := s.Request(grand); err != nil || !hit {
		t.Errorf("2nd drill-down hit = %v (err %v)", hit, err)
	}
	// Bottom of lattice.
	bottom, ok := s.DrillDown(grand, "q1")
	if ok {
		t.Errorf("drill below bottom = %+v", bottom)
	}
	if s.SpeculativeViews == 0 {
		t.Error("no speculative views recorded")
	}
}

func TestSessionNoSpeculationMisses(t *testing.T) {
	tbl := mkRetail(t, 2000, 8)
	c, _ := Build(tbl, []string{"region", "product"}, "amt")
	s, _ := NewSession(c, 64, false)
	v := View{Fixed: map[string]string{}, GroupDim: "region"}
	if _, _, err := s.Request(v); err != nil {
		t.Fatal(err)
	}
	child, _ := s.DrillDown(v, "west")
	if _, hit, _ := s.Request(child); hit {
		t.Error("without speculation the drill-down must miss")
	}
}

func TestViewKeyCanonical(t *testing.T) {
	a := View{Fixed: map[string]string{"x": "1", "y": "2"}, GroupDim: "z"}
	b := View{Fixed: map[string]string{"y": "2", "x": "1"}, GroupDim: "z"}
	if a.Key() != b.Key() {
		t.Error("view keys should be order-insensitive")
	}
}

func TestExceptionsFindPlantedCell(t *testing.T) {
	// Additive grid with one planted anomaly.
	nr, nc := 6, 8
	grid := make([][]float64, nr)
	for i := range grid {
		grid[i] = make([]float64, nc)
		for j := range grid[i] {
			grid[i][j] = 10 + 2*float64(i) + 3*float64(j)
		}
	}
	grid[3][5] += 40 // anomaly
	ex := Exceptions(grid, 2.5)
	if len(ex) == 0 {
		t.Fatal("no exceptions found")
	}
	if ex[0].Row != 3 || ex[0].Col != 5 {
		t.Errorf("top exception at (%d,%d), want (3,5)", ex[0].Row, ex[0].Col)
	}
}

func TestExceptionsCleanGridQuiet(t *testing.T) {
	grid := make([][]float64, 5)
	for i := range grid {
		grid[i] = make([]float64, 5)
		for j := range grid[i] {
			grid[i][j] = float64(i) - float64(j)*2
		}
	}
	if ex := Exceptions(grid, 2.5); len(ex) != 0 {
		t.Errorf("clean additive grid produced %d exceptions", len(ex))
	}
	if ex := Exceptions(nil, 2.5); ex != nil {
		t.Error("nil grid")
	}
	if ex := Exceptions([][]float64{{}}, 2.5); ex != nil {
		t.Error("empty grid")
	}
}

func TestViewGrid(t *testing.T) {
	tbl := mkRetail(t, 3000, 9)
	c, _ := Build(tbl, []string{"region", "product"}, "amt")
	grid, rows, cols, err := c.ViewGrid("region", "product", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(rows) || len(grid[0]) != len(cols) {
		t.Fatalf("grid dims %dx%d vs labels %d/%d", len(grid), len(grid[0]), len(rows), len(cols))
	}
	var s float64
	for _, row := range grid {
		for _, v := range row {
			s += v
		}
	}
	if math.Abs(s-c.Total().Sum) > 1e-6 {
		t.Errorf("grid mass = %v, want %v", s, c.Total().Sum)
	}
}

func TestManyDistinctCells(t *testing.T) {
	// Degenerate high-cardinality dimension: every row its own cell.
	n := 500
	dv := make([]string, n)
	av := make([]float64, n)
	for i := range dv {
		dv[i] = fmt.Sprintf("k%04d", i)
		av[i] = 1
	}
	tbl, _ := storage.FromColumns("hc", storage.Schema{
		{Name: "d", Type: storage.TString}, {Name: "a", Type: storage.TFloat},
	}, []storage.Column{storage.NewStringColumn(dv), storage.NewFloatColumn(av)})
	c, err := Build(tbl, []string{"d"}, "a")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumBaseCells() != n {
		t.Errorf("base cells = %d", c.NumBaseCells())
	}
}
