package crack

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInvariant is returned by CheckInvariants when the cracked column
// violates a partition invariant.
var ErrInvariant = errors.New("crack: invariant violation")

// Insert adds a value to the index, returning the new row id. The value
// lands in the pending buffer; when the buffer exceeds MaxPending it is
// ripple-merged into the cracked column, preserving all cuts — the
// "merge gradually" strategy of updating a cracked database [30].
func (ix *Index[T]) Insert(v T) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	row := ix.nextRow
	ix.nextRow++
	ix.pending = append(ix.pending, pendingIns[T]{val: v, row: row})
	if len(ix.pending) >= ix.opt.MaxPending {
		ix.mergePending()
	}
	return row
}

// Delete tombstones a row id. It reports whether the row was live.
func (ix *Index[T]) Delete(row int) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if row < 0 || row >= ix.nextRow || ix.dead[row] {
		return false
	}
	ix.dead[row] = true
	return true
}

// Flush forces the pending buffer to merge into the cracked column.
func (ix *Index[T]) Flush() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.mergePending()
}

// mergePending ripple-inserts every pending value into its piece.
// Caller holds the write lock.
func (ix *Index[T]) mergePending() {
	if len(ix.pending) == 0 {
		return
	}
	ix.mergesDone++
	// Sort pending descending by value so each ripple touches a suffix of
	// cuts that later (smaller) inserts shift consistently.
	sort.Slice(ix.pending, func(a, b int) bool { return ix.pending[a].val > ix.pending[b].val })
	for _, p := range ix.pending {
		ix.rippleInsert(p.val, p.row)
	}
	ix.pending = ix.pending[:0]
}

// rippleInsert grows the cracked array by one and shifts exactly one
// element per crossed piece (the classic cracking-update shuffle), keeping
// every cut valid. Sorted-piece spans at or beyond the insertion point are
// invalidated, since the inserted value is placed at an arbitrary slot.
func (ix *Index[T]) rippleInsert(v T, row int) {
	_, phi := ix.pieceAt(v)
	var zero T
	ix.vals = append(ix.vals, zero)
	ix.rows = append(ix.rows, 0)
	hole := len(ix.vals) - 1
	// Walk cuts right-to-left; every cut whose value exceeds v moves one
	// slot right, relocating the first element of its piece into the hole.
	// (Shifting by value, not position, matters when several cuts share a
	// position because of empty pieces: cuts with val <= v must stay put.)
	for i := len(ix.cuts) - 1; i >= 0; i-- {
		c := &ix.cuts[i]
		if c.val <= v {
			break
		}
		if c.pos < hole {
			ix.vals[hole] = ix.vals[c.pos]
			ix.rows[hole] = ix.rows[c.pos]
			hole = c.pos
		}
		c.pos++
	}
	ix.vals[hole] = v
	ix.rows[hole] = row
	// Invalidate sorted spans the ripple may have scrambled.
	kept := ix.sorted[:0]
	for _, s := range ix.sorted {
		if s.hi <= phi && s.hi <= hole {
			kept = append(kept, s)
		}
	}
	ix.sorted = kept
}

// CheckInvariants verifies that every cut partitions the column correctly
// (all values left of the cut are smaller, all values at or right of it are
// >= the cut value), that cut positions are monotone, and that sorted spans
// are truly sorted. It exists for tests and costs O(cuts * n).
func (ix *Index[T]) CheckInvariants() error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	lastPos := 0
	var lastVal T
	for i, c := range ix.cuts {
		if c.pos < 0 || c.pos > len(ix.vals) {
			return fmt.Errorf("cut %d pos %d out of range: %w", i, c.pos, ErrInvariant)
		}
		if i > 0 && (c.val <= lastVal || c.pos < lastPos) {
			return fmt.Errorf("cut %d (%v@%d) not monotone after (%v@%d): %w",
				i, c.val, c.pos, lastVal, lastPos, ErrInvariant)
		}
		for p := 0; p < c.pos; p++ {
			if ix.vals[p] >= c.val {
				return fmt.Errorf("val %v at %d >= cut %v@%d: %w", ix.vals[p], p, c.val, c.pos, ErrInvariant)
			}
		}
		for p := c.pos; p < len(ix.vals); p++ {
			if ix.vals[p] < c.val {
				return fmt.Errorf("val %v at %d < cut %v@%d: %w", ix.vals[p], p, c.val, c.pos, ErrInvariant)
			}
		}
		lastPos, lastVal = c.pos, c.val
	}
	for _, s := range ix.sorted {
		for p := s.lo + 1; p < s.hi && p < len(ix.vals); p++ {
			if ix.vals[p-1] > ix.vals[p] {
				return fmt.Errorf("sorted span [%d,%d) unsorted at %d: %w", s.lo, s.hi, p, ErrInvariant)
			}
		}
	}
	return nil
}
