package crack

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// concurrentVariants is the matrix the concurrency property tests sweep:
// every cracking variant must serve concurrent probes correctly, because
// they differ in exactly the code that runs under the write lock (extra
// stochastic cracks, piece sorting).
var concurrentVariants = []Options{
	{Variant: Standard},
	{Variant: Stochastic, StochasticMin: 512},
	{Variant: HybridSort, SortMin: 512},
}

// sortedCopy returns a sorted copy of rows for order-insensitive comparison
// (concurrent probes return piece-order rows, the oracle returns position
// order).
func sortedCopy(rows []int) []int {
	out := append([]int(nil), rows...)
	sort.Ints(out)
	return out
}

// TestConcurrentProbeParity is the race-detector property harness: N
// goroutines fire overlapping range probes at one index — half the ranges
// drawn from a small shared pool (so later probes hit existing cuts and
// take the read path), half fresh (forcing write-lock escalation) — and
// every single probe must return exactly the row set a sequential full
// scan of the original column produces. Run it with -race: the property
// catches wrong answers, the detector catches unsynchronized access.
func TestConcurrentProbeParity(t *testing.T) {
	const (
		n          = 20_000
		goroutines = 8
		perG       = 40
		poolRanges = 16
	)
	for _, opt := range concurrentVariants {
		for _, seed := range []int64{1, 7} {
			opt, seed := opt, seed
			t.Run(fmt.Sprintf("%v/seed=%d", opt.Variant, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				col := make([]int64, n)
				for i := range col {
					col[i] = rng.Int63n(1 << 20)
				}
				ix := New(col, opt)
				oracle := NewFullScan(col)

				// The shared pool: pre-computed ranges many goroutines
				// re-probe, so their bounds become cuts early on.
				type rg struct{ lo, hi int64 }
				pool := make([]rg, poolRanges)
				for i := range pool {
					lo := rng.Int63n(1 << 20)
					pool[i] = rg{lo, lo + 1 + rng.Int63n(1<<20-lo)}
				}

				var reads, writes atomic.Int64
				var wg sync.WaitGroup
				errs := make(chan error, goroutines)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						grng := rand.New(rand.NewSource(seed<<8 + int64(g)))
						for q := 0; q < perG; q++ {
							var lo, hi int64
							if q%2 == 0 {
								r := pool[grng.Intn(len(pool))]
								lo, hi = r.lo, r.hi
							} else {
								lo = grng.Int63n(1 << 20)
								hi = lo + 1 + grng.Int63n(1<<20-lo)
							}
							got, st, err := ix.Probe(lo, hi)
							if err != nil {
								errs <- fmt.Errorf("probe [%d,%d): %v", lo, hi, err)
								return
							}
							if st.Lock == LockRead {
								reads.Add(1)
							} else {
								writes.Add(1)
							}
							want := oracle.Query(lo, hi)
							gs, ws := sortedCopy(got), sortedCopy(want)
							if len(gs) != len(ws) {
								errs <- fmt.Errorf("probe [%d,%d): %d rows, oracle %d", lo, hi, len(gs), len(ws))
								return
							}
							for i := range gs {
								if gs[i] != ws[i] {
									errs <- fmt.Errorf("probe [%d,%d): row %d = %d, oracle %d", lo, hi, i, gs[i], ws[i])
									return
								}
							}
						}
					}(g)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Error(err)
				}
				if err := ix.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				// The pool ranges converge to cuts, so a healthy run serves
				// a meaningful share of probes under the read lock. Both
				// paths must have been exercised or the test is vacuous.
				if reads.Load() == 0 {
					t.Error("no probe took the read path — pool ranges never converged")
				}
				if writes.Load() == 0 {
					t.Error("no probe took the write path — nothing was ever cracked")
				}
				t.Logf("%v/seed=%d: read=%d write=%d pieces=%d", opt.Variant, seed, reads.Load(), writes.Load(), ix.NumPieces())
			})
		}
	}
}

// TestConcurrentProbeParityFloat repeats the parity property over a float
// index: the engine cracks FLOAT columns through the same generic code, and
// float bound comparisons (Nextafter-adjusted half-open ranges in core)
// must not introduce variant behavior under concurrency.
func TestConcurrentProbeParityFloat(t *testing.T) {
	const (
		n          = 10_000
		goroutines = 8
		perG       = 25
	)
	rng := rand.New(rand.NewSource(11))
	col := make([]float64, n)
	for i := range col {
		col[i] = rng.Float64() * 1000
	}
	ix := New(col, Options{})
	oracle := NewFullScan(col)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(100 + int64(g)))
			for q := 0; q < perG; q++ {
				lo := grng.Float64() * 1000
				hi := lo + grng.Float64()*(1000-lo)
				got, _, err := ix.Probe(lo, hi)
				if err != nil {
					errs <- err
					return
				}
				want := oracle.Query(lo, hi)
				gs, ws := sortedCopy(got), sortedCopy(want)
				if len(gs) != len(ws) {
					errs <- fmt.Errorf("probe [%g,%g): %d rows, oracle %d", lo, hi, len(gs), len(ws))
					return
				}
				for i := range gs {
					if gs[i] != ws[i] {
						errs <- fmt.Errorf("probe [%g,%g): mismatch at %d", lo, hi, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentProbesWithUpdates mixes writers (Insert, Delete, Flush)
// with concurrent probes. Mid-flight probe results are not comparable to a
// fixed oracle — each probe sees some consistent intermediate state — so
// the properties are: no probe errors, invariants hold throughout, and
// once the writers finish, a full-range probe returns exactly the live
// rows. Run with -race.
func TestConcurrentProbesWithUpdates(t *testing.T) {
	const (
		n       = 8_000
		probers = 4
		inserts = 3_000
	)
	rng := rand.New(rand.NewSource(3))
	col := make([]int64, n)
	for i := range col {
		col[i] = rng.Int63n(1 << 16)
	}
	ix := New(col, Options{MaxPending: 256})

	var wg sync.WaitGroup
	errs := make(chan error, probers+1)
	stop := make(chan struct{})
	for g := 0; g < probers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(200 + int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := grng.Int63n(1 << 16)
				hi := lo + 1 + grng.Int63n(1<<16-lo)
				if _, _, err := ix.Probe(lo, hi); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}

	// One writer thread: cracking updates are single-writer by design (the
	// engine funnels inserts through table load paths); what must hold is
	// writer-vs-prober safety.
	deleted := map[int]bool{}
	wrng := rand.New(rand.NewSource(999))
	for i := 0; i < inserts; i++ {
		row := ix.Insert(wrng.Int63n(1 << 16))
		if i%7 == 0 {
			ix.Delete(row)
			deleted[row] = true
		}
		if i%500 == 0 {
			ix.Flush()
		}
	}
	ix.Flush()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rows, st, err := ix.Probe(0, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n+inserts-len(deleted) {
		t.Fatalf("full-range probe: %d rows, want %d (lock=%v)", len(rows), n+inserts-len(deleted), st.Lock)
	}
	for _, r := range rows {
		if deleted[r] {
			t.Fatalf("tombstoned row %d returned", r)
		}
	}
}
