// Package crack implements adaptive indexing by database cracking, the
// engine-layer technique the tutorial surveys in depth [26,29]: the first
// queries on a column physically reorganize ("crack") a copy of it around
// the requested value ranges, so the index is built incrementally as a side
// effect of query processing, with no upfront tuning.
//
// Three variants are provided:
//
//   - Standard cracking [29]: crack exactly at the query bounds.
//   - Stochastic cracking [23] (DDR-style): additionally crack large pieces
//     at random pivots so skewed/sequential workloads cannot starve
//     convergence.
//   - Hybrid crack-sort [33]: pieces that shrink below a threshold are
//     sorted in place, after which cracks inside them are free binary
//     searches.
//
// Updates are absorbed adaptively [30] with a pending-insert buffer that is
// ripple-merged into the cracked array, and tombstone deletes. The index is
// safe for concurrent readers; cracking steps take the write lock, so as
// the index converges queries increasingly run lock-shared [22].
package crack

import (
	"cmp"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Variant selects the cracking algorithm.
type Variant uint8

// Cracking variants.
const (
	Standard Variant = iota
	Stochastic
	HybridSort
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Standard:
		return "standard"
	case Stochastic:
		return "stochastic"
	case HybridSort:
		return "hybrid-sort"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Options configures an Index.
type Options struct {
	Variant Variant
	// StochasticMin is the piece size above which the Stochastic variant
	// introduces random pivot cracks before cracking at the query bound.
	StochasticMin int
	// SortMin is the piece size at or below which the HybridSort variant
	// sorts a piece on first touch.
	SortMin int
	// MaxPending is the pending-update buffer size that triggers a merge.
	MaxPending int
	// Seed seeds the random pivot generator (Stochastic variant).
	Seed int64
}

func (o *Options) fill() {
	if o.StochasticMin <= 0 {
		o.StochasticMin = 1 << 10
	}
	if o.SortMin <= 0 {
		o.SortMin = 1 << 10
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 1 << 12
	}
}

// cut is a crack boundary: rows at positions < pos have value < val,
// rows at positions >= pos have value >= val.
type cut[T cmp.Ordered] struct {
	val T
	pos int
}

// Index is a cracker index over a column of any ordered type (integers in
// the classic experiments, but floats and strings crack identically). It
// owns a reordered copy of the values plus the aligned original row
// identifiers. IntIndex aliases the common instantiation.
type Index[T cmp.Ordered] struct {
	mu      sync.RWMutex
	vals    []T
	rows    []int
	cuts    []cut[T] // sorted by val (and pos)
	sorted  []span
	opt     Options
	rng     *rand.Rand
	nextRow int
	pending []pendingIns[T]
	dead    map[int]bool // tombstoned row ids
	// stats
	cracksDone int
	mergesDone int
}

// IntIndex is the classic integer-column cracker.
type IntIndex = Index[int64]

type pendingIns[T cmp.Ordered] struct {
	val T
	row int
}

// span marks a [lo,hi) position range that is known to be sorted.
type span struct{ lo, hi int }

// New builds a cracker index over col. The slice is copied; original row
// ids are the positions in col.
func New[T cmp.Ordered](col []T, opt Options) *Index[T] {
	opt.fill()
	vals := make([]T, len(col))
	copy(vals, col)
	rows := make([]int, len(col))
	for i := range rows {
		rows[i] = i
	}
	return &Index[T]{
		vals:    vals,
		rows:    rows,
		opt:     opt,
		rng:     rand.New(rand.NewSource(opt.Seed)),
		nextRow: len(col),
		dead:    make(map[int]bool),
	}
}

// Len returns the number of live values (cracked array plus pending,
// minus tombstones).
func (ix *Index[T]) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.vals) + len(ix.pending) - len(ix.dead)
}

// NumPieces returns the number of pieces the column is currently cracked
// into (cuts + 1).
func (ix *Index[T]) NumPieces() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.cuts) + 1
}

// Cracks returns how many physical partition steps have been performed.
func (ix *Index[T]) Cracks() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.cracksDone
}

// Merges returns how many pending-buffer merges have been performed.
func (ix *Index[T]) Merges() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.mergesDone
}

// Query returns the row ids whose value v satisfies lo <= v < hi.
// As a side effect it cracks the underlying column at lo and hi.
func (ix *Index[T]) Query(lo, hi T) []int {
	if lo >= hi {
		return nil
	}
	pa, pb := ix.bounds(lo, hi)
	ix.mu.RLock()
	out := make([]int, 0, pb-pa+len(ix.pending)/4)
	for i := pa; i < pb; i++ {
		if !ix.dead[ix.rows[i]] {
			out = append(out, ix.rows[i])
		}
	}
	for _, p := range ix.pending {
		if p.val >= lo && p.val < hi && !ix.dead[p.row] {
			out = append(out, p.row)
		}
	}
	ix.mu.RUnlock()
	return out
}

// Count returns how many values satisfy lo <= v < hi, cracking as a side
// effect but without materializing row ids.
func (ix *Index[T]) Count(lo, hi T) int {
	if lo >= hi {
		return 0
	}
	pa, pb := ix.bounds(lo, hi)
	ix.mu.RLock()
	n := 0
	if len(ix.dead) == 0 {
		n = pb - pa
	} else {
		for i := pa; i < pb; i++ {
			if !ix.dead[ix.rows[i]] {
				n++
			}
		}
	}
	for _, p := range ix.pending {
		if p.val >= lo && p.val < hi && !ix.dead[p.row] {
			n++
		}
	}
	ix.mu.RUnlock()
	return n
}

// bounds cracks at lo and hi and returns their positions. It first tries
// under the read lock (both cuts already known: the converged fast path the
// concurrency-control work [22] exploits), then falls back to the write lock.
func (ix *Index[T]) bounds(lo, hi T) (int, int) {
	ix.mu.RLock()
	pa, oka := ix.lookupCut(lo)
	pb, okb := ix.lookupCut(hi)
	ix.mu.RUnlock()
	if oka && okb {
		return pa, pb
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	pa = ix.crackAt(lo)
	pb = ix.crackAt(hi)
	return pa, pb
}

// lookupCut returns the position of an existing cut at v, or where a fully
// sorted piece makes the position derivable without physical work.
func (ix *Index[T]) lookupCut(v T) (int, bool) {
	i := sort.Search(len(ix.cuts), func(i int) bool { return ix.cuts[i].val >= v })
	if i < len(ix.cuts) && ix.cuts[i].val == v {
		return ix.cuts[i].pos, true
	}
	return 0, false
}

// pieceAt returns the piece [plo,phi) that value v falls into, given cuts.
func (ix *Index[T]) pieceAt(v T) (plo, phi int) {
	plo, phi = 0, len(ix.vals)
	i := sort.Search(len(ix.cuts), func(i int) bool { return ix.cuts[i].val > v })
	// cuts[i-1].val <= v < cuts[i].val
	if i > 0 {
		plo = ix.cuts[i-1].pos
	}
	if i < len(ix.cuts) {
		phi = ix.cuts[i].pos
	}
	return plo, phi
}

// insertCut records a new crack boundary.
func (ix *Index[T]) insertCut(v T, pos int) {
	i := sort.Search(len(ix.cuts), func(i int) bool { return ix.cuts[i].val >= v })
	if i < len(ix.cuts) && ix.cuts[i].val == v {
		return
	}
	ix.cuts = append(ix.cuts, cut[T]{})
	copy(ix.cuts[i+1:], ix.cuts[i:])
	ix.cuts[i] = cut[T]{val: v, pos: pos}
}

// crackAt ensures a cut exists at value v and returns its position.
// Caller holds the write lock.
func (ix *Index[T]) crackAt(v T) int {
	if p, ok := ix.lookupCut(v); ok {
		return p
	}
	plo, phi := ix.pieceAt(v)

	if ix.isSorted(plo, phi) {
		// Free crack: binary search inside the sorted piece.
		pos := plo + sort.Search(phi-plo, func(i int) bool { return ix.vals[plo+i] >= v })
		ix.insertCut(v, pos)
		return pos
	}

	if ix.opt.Variant == Stochastic {
		// DDR-style: split oversized pieces at random pivots first, then
		// crack at the query bound inside the shrunken piece.
		for phi-plo > ix.opt.StochasticMin {
			pivot := ix.vals[plo+ix.rng.Intn(phi-plo)]
			mid := ix.partition(plo, phi, pivot)
			if mid == plo || mid == phi {
				break // degenerate pivot (all equal); stop splitting
			}
			ix.insertCut(pivot, mid)
			if v < pivot {
				phi = mid
			} else {
				plo = mid
			}
		}
	}

	if ix.opt.Variant == HybridSort && phi-plo <= ix.opt.SortMin && phi > plo {
		ix.sortPiece(plo, phi)
		pos := plo + sort.Search(phi-plo, func(i int) bool { return ix.vals[plo+i] >= v })
		ix.insertCut(v, pos)
		return pos
	}

	pos := ix.partition(plo, phi, v)
	ix.insertCut(v, pos)
	return pos
}

// partition reorders positions [lo,hi) so values < pivot precede values
// >= pivot, returning the split position.
func (ix *Index[T]) partition(lo, hi int, pivot T) int {
	ix.cracksDone++
	vals, rows := ix.vals, ix.rows
	i, j := lo, hi-1
	for i <= j {
		for i <= j && vals[i] < pivot {
			i++
		}
		for i <= j && vals[j] >= pivot {
			j--
		}
		if i < j {
			vals[i], vals[j] = vals[j], vals[i]
			rows[i], rows[j] = rows[j], rows[i]
			i++
			j--
		}
	}
	return i
}

// sortPiece sorts positions [lo,hi) and records the span as sorted.
func (ix *Index[T]) sortPiece(lo, hi int) {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ix.vals[idx[a]] < ix.vals[idx[b]] })
	vtmp := make([]T, hi-lo)
	rtmp := make([]int, hi-lo)
	for i, p := range idx {
		vtmp[i] = ix.vals[p]
		rtmp[i] = ix.rows[p]
	}
	copy(ix.vals[lo:hi], vtmp)
	copy(ix.rows[lo:hi], rtmp)
	ix.sorted = append(ix.sorted, span{lo, hi})
}

// isSorted reports whether [lo,hi) lies inside a span previously sorted.
func (ix *Index[T]) isSorted(lo, hi int) bool {
	for _, s := range ix.sorted {
		if s.lo <= lo && hi <= s.hi {
			return true
		}
	}
	return false
}
