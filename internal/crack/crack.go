// Package crack implements adaptive indexing by database cracking, the
// engine-layer technique the tutorial surveys in depth [26,29]: the first
// queries on a column physically reorganize ("crack") a copy of it around
// the requested value ranges, so the index is built incrementally as a side
// effect of query processing, with no upfront tuning.
//
// Three variants are provided:
//
//   - Standard cracking [29]: crack exactly at the query bounds.
//   - Stochastic cracking [23] (DDR-style): additionally crack large pieces
//     at random pivots so skewed/sequential workloads cannot starve
//     convergence.
//   - Hybrid crack-sort [33]: pieces that shrink below a threshold are
//     sorted in place, after which cracks inside them are free binary
//     searches.
//
// Updates are absorbed adaptively [30] with a pending-insert buffer that is
// ripple-merged into the cracked array, and tombstone deletes.
//
// Concurrency control is per index, the granularity the engine needs for
// multi-session exploration: every probe runs inside a single critical
// section of the index RWMutex. A probe whose bounds already coincide with
// existing cuts — the common case once the index has converged on the
// workload's ranges — holds only the read lock, so any number of such
// probes proceed in parallel. Only a probe that must physically reorganize
// the column escalates to the write lock [22]. Holding one lock for the
// whole probe (position lookup AND row collection) matters: with separate
// acquisitions a pending-buffer merge between them can shift cut positions
// and make the collection read rows that no longer satisfy the range.
package crack

import (
	"cmp"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"dex/internal/fault"
)

// fpEscalate injects faults at the crack write-lock escalation: the moment
// a probe gives up on the converged read path and queues for exclusive
// access. Latency policies here simulate reorganization stalls (and drive
// the degradation contract); error policies make the probe fail before it
// touches the column, which must never corrupt the index.
var fpEscalate = fault.Register("crack/escalate")

// Variant selects the cracking algorithm.
type Variant uint8

// Cracking variants.
const (
	Standard Variant = iota
	Stochastic
	HybridSort
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Standard:
		return "standard"
	case Stochastic:
		return "stochastic"
	case HybridSort:
		return "hybrid-sort"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Options configures an Index.
type Options struct {
	Variant Variant
	// StochasticMin is the piece size above which the Stochastic variant
	// introduces random pivot cracks before cracking at the query bound.
	StochasticMin int
	// SortMin is the piece size at or below which the HybridSort variant
	// sorts a piece on first touch.
	SortMin int
	// MaxPending is the pending-update buffer size that triggers a merge.
	MaxPending int
	// Seed seeds the random pivot generator (Stochastic variant).
	Seed int64
}

func (o *Options) fill() {
	if o.StochasticMin <= 0 {
		o.StochasticMin = 1 << 10
	}
	if o.SortMin <= 0 {
		o.SortMin = 1 << 10
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 1 << 12
	}
}

// cut is a crack boundary: rows at positions < pos have value < val,
// rows at positions >= pos have value >= val.
type cut[T cmp.Ordered] struct {
	val T
	pos int
}

// Index is a cracker index over a column of any ordered type (integers in
// the classic experiments, but floats and strings crack identically). It
// owns a reordered copy of the values plus the aligned original row
// identifiers. IntIndex aliases the common instantiation.
type Index[T cmp.Ordered] struct {
	mu      sync.RWMutex
	vals    []T
	rows    []int
	cuts    []cut[T] // sorted by val (and pos)
	sorted  []span
	opt     Options
	rng     *rand.Rand
	nextRow int
	pending []pendingIns[T]
	dead    map[int]bool // tombstoned row ids
	// stats
	cracksDone int
	mergesDone int
}

// IntIndex is the classic integer-column cracker.
type IntIndex = Index[int64]

type pendingIns[T cmp.Ordered] struct {
	val T
	row int
}

// span marks a [lo,hi) position range that is known to be sorted.
type span struct{ lo, hi int }

// New builds a cracker index over col. The slice is copied; original row
// ids are the positions in col.
func New[T cmp.Ordered](col []T, opt Options) *Index[T] {
	opt.fill()
	vals := make([]T, len(col))
	copy(vals, col)
	rows := make([]int, len(col))
	for i := range rows {
		rows[i] = i
	}
	return &Index[T]{
		vals:    vals,
		rows:    rows,
		opt:     opt,
		rng:     rand.New(rand.NewSource(opt.Seed)),
		nextRow: len(col),
		dead:    make(map[int]bool),
	}
}

// Len returns the number of live values (cracked array plus pending,
// minus tombstones).
func (ix *Index[T]) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.vals) + len(ix.pending) - len(ix.dead)
}

// NumPieces returns the number of pieces the column is currently cracked
// into (cuts + 1).
func (ix *Index[T]) NumPieces() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.cuts) + 1
}

// Cracks returns how many physical partition steps have been performed.
func (ix *Index[T]) Cracks() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.cracksDone
}

// Merges returns how many pending-buffer merges have been performed.
func (ix *Index[T]) Merges() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.mergesDone
}

// LockMode classifies how a probe was served: under the shared read lock
// (bounds coincided with existing cuts, no physical work) or under the
// exclusive write lock (the probe reorganized the column).
type LockMode uint8

// Probe lock modes.
const (
	LockRead LockMode = iota
	LockWrite
)

// String names the lock mode ("read"/"write").
func (m LockMode) String() string {
	if m == LockRead {
		return "read"
	}
	return "write"
}

// ProbeStats describes one probe: the lock mode it ran under and a
// snapshot of the index shape (pieces, cumulative cracks) taken inside
// the probe's own critical section — so the numbers belong to this probe,
// not to whichever concurrent probe finished last.
type ProbeStats struct {
	Lock   LockMode
	Pieces int
	Cracks int
}

// Probe returns the row ids whose value v satisfies lo <= v < hi, plus
// per-probe stats, cracking the underlying column at lo and hi when
// needed. The whole probe is one critical section: read-locked when both
// bounds are already cuts (the converged path — unlimited concurrent
// probes), write-locked when it must reorganize. The error is non-nil only
// when the crack/escalate failpoint is armed and fires.
func (ix *Index[T]) Probe(lo, hi T) ([]int, ProbeStats, error) {
	if lo >= hi {
		ix.mu.RLock()
		st := ix.statsLocked(LockRead)
		ix.mu.RUnlock()
		return nil, st, nil
	}
	if rows, st, ok := ix.tryReadProbe(lo, hi); ok {
		return rows, st, nil
	}
	if err := fpEscalate.Hit(); err != nil {
		return nil, ProbeStats{Lock: LockWrite}, err
	}
	rows, st := ix.writeProbe(lo, hi)
	return rows, st, nil
}

// Query returns the row ids whose value v satisfies lo <= v < hi.
// As a side effect it cracks the underlying column at lo and hi. It is
// Probe without the stats and without the escalation failpoint (bench
// loops and baselines that must not be perturbed by armed faults).
func (ix *Index[T]) Query(lo, hi T) []int {
	if lo >= hi {
		return nil
	}
	if rows, _, ok := ix.tryReadProbe(lo, hi); ok {
		return rows
	}
	rows, _ := ix.writeProbe(lo, hi)
	return rows
}

// tryReadProbe serves the probe entirely under the read lock when both
// bounds are existing cuts; ok reports whether it could.
func (ix *Index[T]) tryReadProbe(lo, hi T) ([]int, ProbeStats, bool) {
	ix.mu.RLock()
	pa, oka := ix.lookupCut(lo)
	pb, okb := ix.lookupCut(hi)
	if !oka || !okb {
		ix.mu.RUnlock()
		return nil, ProbeStats{}, false
	}
	rows := ix.collectLocked(pa, pb, lo, hi)
	st := ix.statsLocked(LockRead)
	ix.mu.RUnlock()
	return rows, st, true
}

// writeProbe cracks at both bounds and collects rows under the write lock.
func (ix *Index[T]) writeProbe(lo, hi T) ([]int, ProbeStats) {
	ix.mu.Lock()
	pa := ix.crackAt(lo)
	pb := ix.crackAt(hi)
	rows := ix.collectLocked(pa, pb, lo, hi)
	st := ix.statsLocked(LockWrite)
	ix.mu.Unlock()
	return rows, st
}

// collectLocked gathers the live row ids at positions [pa, pb) plus the
// pending inserts in [lo, hi). Caller holds at least the read lock.
func (ix *Index[T]) collectLocked(pa, pb int, lo, hi T) []int {
	out := make([]int, 0, pb-pa+len(ix.pending)/4)
	for i := pa; i < pb; i++ {
		if !ix.dead[ix.rows[i]] {
			out = append(out, ix.rows[i])
		}
	}
	for _, p := range ix.pending {
		if p.val >= lo && p.val < hi && !ix.dead[p.row] {
			out = append(out, p.row)
		}
	}
	return out
}

// statsLocked snapshots the index shape. Caller holds at least the read lock.
func (ix *Index[T]) statsLocked(mode LockMode) ProbeStats {
	return ProbeStats{Lock: mode, Pieces: len(ix.cuts) + 1, Cracks: ix.cracksDone}
}

// Count returns how many values satisfy lo <= v < hi, cracking as a side
// effect but without materializing row ids. Like Probe it is one critical
// section, read-locked on the converged path.
func (ix *Index[T]) Count(lo, hi T) int {
	if lo >= hi {
		return 0
	}
	ix.mu.RLock()
	pa, oka := ix.lookupCut(lo)
	pb, okb := ix.lookupCut(hi)
	if oka && okb {
		n := ix.countLocked(pa, pb, lo, hi)
		ix.mu.RUnlock()
		return n
	}
	ix.mu.RUnlock()
	ix.mu.Lock()
	pa = ix.crackAt(lo)
	pb = ix.crackAt(hi)
	n := ix.countLocked(pa, pb, lo, hi)
	ix.mu.Unlock()
	return n
}

// countLocked counts live rows at positions [pa, pb) plus pending inserts
// in [lo, hi). Caller holds at least the read lock.
func (ix *Index[T]) countLocked(pa, pb int, lo, hi T) int {
	n := 0
	if len(ix.dead) == 0 {
		n = pb - pa
	} else {
		for i := pa; i < pb; i++ {
			if !ix.dead[ix.rows[i]] {
				n++
			}
		}
	}
	for _, p := range ix.pending {
		if p.val >= lo && p.val < hi && !ix.dead[p.row] {
			n++
		}
	}
	return n
}

// lookupCut returns the position of an existing cut at v, or where a fully
// sorted piece makes the position derivable without physical work.
func (ix *Index[T]) lookupCut(v T) (int, bool) {
	i := sort.Search(len(ix.cuts), func(i int) bool { return ix.cuts[i].val >= v })
	if i < len(ix.cuts) && ix.cuts[i].val == v {
		return ix.cuts[i].pos, true
	}
	return 0, false
}

// pieceAt returns the piece [plo,phi) that value v falls into, given cuts.
func (ix *Index[T]) pieceAt(v T) (plo, phi int) {
	plo, phi = 0, len(ix.vals)
	i := sort.Search(len(ix.cuts), func(i int) bool { return ix.cuts[i].val > v })
	// cuts[i-1].val <= v < cuts[i].val
	if i > 0 {
		plo = ix.cuts[i-1].pos
	}
	if i < len(ix.cuts) {
		phi = ix.cuts[i].pos
	}
	return plo, phi
}

// insertCut records a new crack boundary.
func (ix *Index[T]) insertCut(v T, pos int) {
	i := sort.Search(len(ix.cuts), func(i int) bool { return ix.cuts[i].val >= v })
	if i < len(ix.cuts) && ix.cuts[i].val == v {
		return
	}
	ix.cuts = append(ix.cuts, cut[T]{})
	copy(ix.cuts[i+1:], ix.cuts[i:])
	ix.cuts[i] = cut[T]{val: v, pos: pos}
}

// crackAt ensures a cut exists at value v and returns its position.
// Caller holds the write lock.
func (ix *Index[T]) crackAt(v T) int {
	if p, ok := ix.lookupCut(v); ok {
		return p
	}
	plo, phi := ix.pieceAt(v)

	if ix.isSorted(plo, phi) {
		// Free crack: binary search inside the sorted piece.
		pos := plo + sort.Search(phi-plo, func(i int) bool { return ix.vals[plo+i] >= v })
		ix.insertCut(v, pos)
		return pos
	}

	if ix.opt.Variant == Stochastic {
		// DDR-style: split oversized pieces at random pivots first, then
		// crack at the query bound inside the shrunken piece.
		for phi-plo > ix.opt.StochasticMin {
			pivot := ix.vals[plo+ix.rng.Intn(phi-plo)]
			mid := ix.partition(plo, phi, pivot)
			if mid == plo || mid == phi {
				break // degenerate pivot (all equal); stop splitting
			}
			ix.insertCut(pivot, mid)
			if v < pivot {
				phi = mid
			} else {
				plo = mid
			}
		}
	}

	if ix.opt.Variant == HybridSort && phi-plo <= ix.opt.SortMin && phi > plo {
		ix.sortPiece(plo, phi)
		pos := plo + sort.Search(phi-plo, func(i int) bool { return ix.vals[plo+i] >= v })
		ix.insertCut(v, pos)
		return pos
	}

	pos := ix.partition(plo, phi, v)
	ix.insertCut(v, pos)
	return pos
}

// partition reorders positions [lo,hi) so values < pivot precede values
// >= pivot, returning the split position.
func (ix *Index[T]) partition(lo, hi int, pivot T) int {
	ix.cracksDone++
	vals, rows := ix.vals, ix.rows
	i, j := lo, hi-1
	for i <= j {
		for i <= j && vals[i] < pivot {
			i++
		}
		for i <= j && vals[j] >= pivot {
			j--
		}
		if i < j {
			vals[i], vals[j] = vals[j], vals[i]
			rows[i], rows[j] = rows[j], rows[i]
			i++
			j--
		}
	}
	return i
}

// sortPiece sorts positions [lo,hi) and records the span as sorted.
func (ix *Index[T]) sortPiece(lo, hi int) {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ix.vals[idx[a]] < ix.vals[idx[b]] })
	vtmp := make([]T, hi-lo)
	rtmp := make([]int, hi-lo)
	for i, p := range idx {
		vtmp[i] = ix.vals[p]
		rtmp[i] = ix.rows[p]
	}
	copy(ix.vals[lo:hi], vtmp)
	copy(ix.rows[lo:hi], rtmp)
	ix.sorted = append(ix.sorted, span{lo, hi})
}

// isSorted reports whether [lo,hi) lies inside a span previously sorted.
func (ix *Index[T]) isSorted(lo, hi int) bool {
	for _, s := range ix.sorted {
		if s.lo <= lo && hi <= s.hi {
			return true
		}
	}
	return false
}
