package crack

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// oracle returns the row ids matching [lo,hi) by brute force over the
// original column plus live inserts.
func oracle(col []int64, lo, hi int64) []int {
	var out []int
	for i, v := range col {
		if v >= lo && v < hi {
			out = append(out, i)
		}
	}
	return out
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func randCol(rng *rand.Rand, n, domain int) []int64 {
	col := make([]int64, n)
	for i := range col {
		col[i] = int64(rng.Intn(domain))
	}
	return col
}

func testVariantCorrect(t *testing.T, v Variant) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	col := randCol(rng, 5000, 1000)
	ix := New(col, Options{Variant: v, StochasticMin: 64, SortMin: 64, Seed: 1})
	for q := 0; q < 300; q++ {
		lo := int64(rng.Intn(1000))
		hi := lo + int64(rng.Intn(100))
		got := ix.Query(lo, hi)
		want := oracle(col, lo, hi)
		if !sameSet(got, want) {
			t.Fatalf("%v query %d [%d,%d): got %d rows, want %d", v, q, lo, hi, len(got), len(want))
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatalf("%v: %v", v, err)
	}
	if ix.NumPieces() < 10 {
		t.Errorf("%v: expected many pieces after 300 queries, got %d", v, ix.NumPieces())
	}
}

func TestStandardCorrect(t *testing.T)   { testVariantCorrect(t, Standard) }
func TestStochasticCorrect(t *testing.T) { testVariantCorrect(t, Stochastic) }
func TestHybridSortCorrect(t *testing.T) { testVariantCorrect(t, HybridSort) }

func TestQueryEdgeCases(t *testing.T) {
	col := []int64{5, 1, 9, 3, 7}
	ix := New(col, Options{})
	if got := ix.Query(4, 4); got != nil {
		t.Errorf("empty range = %v", got)
	}
	if got := ix.Query(9, 3); got != nil {
		t.Errorf("inverted range = %v", got)
	}
	if got := ix.Query(-100, 100); len(got) != 5 {
		t.Errorf("full range = %v", got)
	}
	if n := ix.Count(5, 6); n != 1 {
		t.Errorf("point count = %d", n)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateHeavyColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	col := randCol(rng, 2000, 5) // only 5 distinct values
	for _, v := range []Variant{Standard, Stochastic, HybridSort} {
		ix := New(col, Options{Variant: v, StochasticMin: 32, SortMin: 32})
		for q := 0; q < 50; q++ {
			lo := int64(rng.Intn(5))
			hi := lo + int64(rng.Intn(3))
			if !sameSet(ix.Query(lo, hi), oracle(col, lo, hi)) {
				t.Fatalf("%v: wrong result on duplicates", v)
			}
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}

func TestCountMatchesQueryLen(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	col := randCol(rng, 3000, 500)
	ix := New(col, Options{Variant: Stochastic, StochasticMin: 128})
	for q := 0; q < 100; q++ {
		lo := int64(rng.Intn(500))
		hi := lo + int64(rng.Intn(50))
		if n, m := ix.Count(lo, hi), len(ix.Query(lo, hi)); n != m {
			t.Fatalf("count %d != query len %d", n, m)
		}
	}
}

func TestInsertsVisibleAndMerged(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	col := randCol(rng, 1000, 200)
	live := append([]int64(nil), col...)
	ix := New(col, Options{MaxPending: 64})
	for i := 0; i < 500; i++ {
		v := int64(rng.Intn(200))
		row := ix.Insert(v)
		if row != len(live) {
			t.Fatalf("insert row id = %d, want %d", row, len(live))
		}
		live = append(live, v)
		if i%10 == 0 {
			lo := int64(rng.Intn(200))
			hi := lo + int64(rng.Intn(40))
			if !sameSet(ix.Query(lo, hi), oracle(live, lo, hi)) {
				t.Fatalf("wrong result after %d inserts", i+1)
			}
		}
	}
	if ix.Merges() == 0 {
		t.Error("expected at least one merge with MaxPending=64 and 500 inserts")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	ix.Flush()
	if err := ix.CheckInvariants(); err != nil {
		t.Fatalf("after flush: %v", err)
	}
	if ix.Len() != len(live) {
		t.Errorf("len = %d, want %d", ix.Len(), len(live))
	}
}

func TestDeletes(t *testing.T) {
	col := []int64{10, 20, 30, 40, 50}
	ix := New(col, Options{})
	if !ix.Delete(2) {
		t.Error("delete live row")
	}
	if ix.Delete(2) {
		t.Error("double delete should report false")
	}
	if ix.Delete(99) {
		t.Error("delete of unknown row should report false")
	}
	got := ix.Query(0, 100)
	if len(got) != 4 {
		t.Errorf("after delete rows = %v", got)
	}
	for _, r := range got {
		if r == 2 {
			t.Error("deleted row still returned")
		}
	}
	if n := ix.Count(0, 100); n != 4 {
		t.Errorf("count after delete = %d", n)
	}
	if ix.Len() != 4 {
		t.Errorf("len after delete = %d", ix.Len())
	}
}

func TestMixedInsertDeleteQueryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		col := randCol(rng, 300, 60)
		live := map[int]int64{}
		for i, v := range col {
			live[i] = v
		}
		ix := New(col, Options{Variant: Variant(rng.Intn(3)), MaxPending: 16,
			StochasticMin: 32, SortMin: 32, Seed: seed})
		next := len(col)
		for step := 0; step < 200; step++ {
			switch rng.Intn(4) {
			case 0:
				v := int64(rng.Intn(60))
				ix.Insert(v)
				live[next] = v
				next++
			case 1:
				if len(live) > 0 {
					r := rng.Intn(next)
					_, wasLive := live[r]
					if ix.Delete(r) != wasLive {
						return false
					}
					delete(live, r)
				}
			default:
				lo := int64(rng.Intn(60))
				hi := lo + int64(rng.Intn(20))
				got := ix.Query(lo, hi)
				want := []int{}
				for r, v := range live {
					if v >= lo && v < hi {
						want = append(want, r)
					}
				}
				if !sameSet(got, want) {
					return false
				}
			}
		}
		return ix.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	col := randCol(rng, 20000, 2000)
	full := NewSorted(col)
	ix := New(col, Options{Variant: Stochastic, StochasticMin: 256})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for q := 0; q < 200; q++ {
				lo := int64(r.Intn(2000))
				hi := lo + int64(r.Intn(100))
				if got, want := ix.Count(lo, hi), full.Count(lo, hi); got != want {
					select {
					case errs <- "count mismatch under concurrency":
					default:
					}
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		col := randCol(rng, 500, 100)
		fs := NewFullScan(col)
		si := NewSorted(col)
		for q := 0; q < 30; q++ {
			lo := int64(rng.Intn(100))
			hi := lo + int64(rng.Intn(30))
			if !sameSet(fs.Query(lo, hi), si.Query(lo, hi)) {
				return false
			}
			if fs.Count(lo, hi) != si.Count(lo, hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestConvergence demonstrates the cracking headline behaviour: per-query
// touched work shrinks as the index converges.
func TestConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	col := randCol(rng, 100000, 100000)
	ix := New(col, Options{Variant: Standard})
	for q := 0; q < 200; q++ {
		lo := int64(rng.Intn(100000))
		ix.Count(lo, lo+1000)
	}
	if p := ix.NumPieces(); p < 100 {
		t.Errorf("pieces after 200 queries = %d, want >= 100", p)
	}
	// After convergence a repeated query needs no new cracks.
	before := ix.Cracks()
	ix.Count(500, 1500)
	ix.Count(500, 1500)
	after := ix.Cracks()
	if after-before > 2 {
		t.Errorf("repeated query cracked %d times", after-before)
	}
}

func TestSequentialWorkloadStochasticSplits(t *testing.T) {
	n := 50000
	col := make([]int64, n)
	rng := rand.New(rand.NewSource(4))
	for i := range col {
		col[i] = int64(rng.Intn(n))
	}
	std := New(col, Options{Variant: Standard})
	sto := New(col, Options{Variant: Stochastic, StochasticMin: 1024, Seed: 9})
	// Sequential workload: ascending non-overlapping ranges hit only the
	// big right-hand piece under standard cracking.
	step := int64(n / 100)
	for q := int64(0); q < 50; q++ {
		std.Count(q*step, q*step+step)
		sto.Count(q*step, q*step+step)
	}
	if sto.NumPieces() <= std.NumPieces() {
		t.Errorf("stochastic pieces %d <= standard %d on sequential workload",
			sto.NumPieces(), std.NumPieces())
	}
	if err := sto.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVariantString(t *testing.T) {
	if Standard.String() != "standard" || Stochastic.String() != "stochastic" || HybridSort.String() != "hybrid-sort" {
		t.Error("variant names")
	}
}

// TestFloatCracking exercises the generic index over float64 columns.
func TestFloatCracking(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	col := make([]float64, 3000)
	for i := range col {
		col[i] = rng.NormFloat64() * 100
	}
	ix := New(col, Options{Variant: Stochastic, StochasticMin: 128, Seed: 32})
	full := NewSorted(col)
	for q := 0; q < 100; q++ {
		lo := rng.NormFloat64() * 100
		hi := lo + rng.Float64()*50
		if got, want := ix.Count(lo, hi), full.Count(lo, hi); got != want {
			t.Fatalf("float count [%v,%v) = %d, want %d", lo, hi, got, want)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Inserts and deletes work generically too.
	row := ix.Insert(12.5)
	if n := ix.Count(12, 13); n < 1 {
		t.Errorf("inserted float invisible, count=%d", n)
	}
	ix.Delete(row)
	ix.Flush()
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStringCracking cracks a TEXT column lexicographically.
func TestStringCracking(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	col := make([]string, 1000)
	for i := range col {
		col[i] = string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26)))
	}
	ix := New(col, Options{})
	full := NewSorted(col)
	for q := 0; q < 40; q++ {
		lo := string(rune('a' + rng.Intn(26)))
		hi := string(rune('a'+rng.Intn(26))) + "zz"
		if got, want := ix.Count(lo, hi), full.Count(lo, hi); got != want {
			t.Fatalf("string count [%q,%q) = %d, want %d", lo, hi, got, want)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
