package crack

import (
	"cmp"
	"sort"
)

// RangeIndex is the common interface of the cracker index and its two
// baselines, so benchmarks and the engine can swap them freely.
type RangeIndex[T cmp.Ordered] interface {
	// Query returns row ids with lo <= value < hi.
	Query(lo, hi T) []int
	// Count returns the number of values with lo <= value < hi.
	Count(lo, hi T) int
}

// FullScan is the no-index baseline: every query scans the whole column.
type FullScan[T cmp.Ordered] struct {
	vals []T
}

// NewFullScan wraps a column (not copied) as a scan-only index.
func NewFullScan[T cmp.Ordered](col []T) *FullScan[T] { return &FullScan[T]{vals: col} }

// Query implements RangeIndex by scanning.
func (f *FullScan[T]) Query(lo, hi T) []int {
	if lo >= hi {
		return nil
	}
	var out []int
	for i, v := range f.vals {
		if v >= lo && v < hi {
			out = append(out, i)
		}
	}
	return out
}

// Count implements RangeIndex by scanning.
func (f *FullScan[T]) Count(lo, hi T) int {
	if lo >= hi {
		return 0
	}
	n := 0
	for _, v := range f.vals {
		if v >= lo && v < hi {
			n++
		}
	}
	return n
}

// SortedIndex is the full-index baseline: it pays the complete sort upfront
// (the "tuning phase" traditional systems assume time for) and then answers
// every range query with two binary searches.
type SortedIndex[T cmp.Ordered] struct {
	vals []T
	rows []int
}

// NewSorted builds the full index by sorting a copy of col.
func NewSorted[T cmp.Ordered](col []T) *SortedIndex[T] {
	idx := make([]int, len(col))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return col[idx[a]] < col[idx[b]] })
	vals := make([]T, len(col))
	rows := make([]int, len(col))
	for i, p := range idx {
		vals[i] = col[p]
		rows[i] = p
	}
	return &SortedIndex[T]{vals: vals, rows: rows}
}

// Query implements RangeIndex via binary search.
func (s *SortedIndex[T]) Query(lo, hi T) []int {
	if lo >= hi {
		return nil
	}
	a := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= lo })
	b := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= hi })
	out := make([]int, b-a)
	copy(out, s.rows[a:b])
	return out
}

// Count implements RangeIndex via binary search.
func (s *SortedIndex[T]) Count(lo, hi T) int {
	if lo >= hi {
		return 0
	}
	a := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= lo })
	b := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= hi })
	return b - a
}
