package seedb

import (
	"errors"
	"math/rand"
	"testing"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
)

// mkCensus builds a table where the target subset (flag=1) has a strongly
// different distribution of `signal` across dim `d1`, while `noise` columns
// are identically distributed — so the interesting view is known.
func mkCensus(tb testing.TB, n int, seed int64) *storage.Table {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	d1 := make([]string, n)
	d2 := make([]string, n)
	flag := make([]int64, n)
	signal := make([]float64, n)
	noise := make([]float64, n)
	cats := []string{"a", "b", "c", "d"}
	for i := 0; i < n; i++ {
		f := int64(0)
		if rng.Float64() < 0.3 {
			f = 1
		}
		flag[i] = f
		c := rng.Intn(len(cats))
		d1[i] = cats[c]
		d2[i] = cats[rng.Intn(len(cats))]
		base := 10.0
		if f == 1 && c < 2 { // target skews signal hard onto groups a,b
			base = 100.0
		}
		signal[i] = base + rng.NormFloat64()
		noise[i] = 50 + rng.NormFloat64()
	}
	t, err := storage.FromColumns("census", storage.Schema{
		{Name: "d1", Type: storage.TString},
		{Name: "d2", Type: storage.TString},
		{Name: "flag", Type: storage.TInt},
		{Name: "signal", Type: storage.TFloat},
		{Name: "noise", Type: storage.TFloat},
	}, []storage.Column{
		storage.NewStringColumn(d1), storage.NewStringColumn(d2),
		storage.NewIntColumn(flag), storage.NewFloatColumn(signal),
		storage.NewFloatColumn(noise),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

func target() *expr.Pred { return expr.Cmp("flag", expr.EQ, storage.Int(1)) }

func views() []View {
	return Candidates(
		[]string{"d1", "d2"},
		[]string{"signal", "noise"},
		[]exec.AggFunc{exec.AggSum, exec.AggAvg, exec.AggCount},
	)
}

func TestCandidates(t *testing.T) {
	vs := views()
	if len(vs) != 2*2*3 {
		t.Fatalf("candidates = %d", len(vs))
	}
	if vs[0].String() == "" {
		t.Error("view string")
	}
}

func TestTopViewIsThePlantedSignal(t *testing.T) {
	tbl := mkCensus(t, 8000, 1)
	top, _, err := Recommend(tbl, target(), views(), Options{K: 3, Strategy: SharedScan})
	if err != nil {
		t.Fatal(err)
	}
	best := top[0].View
	if best.Dim != "d1" || best.Measure != "signal" {
		t.Errorf("top view = %v, want signal by d1", best)
	}
	if top[0].Utility <= top[2].Utility {
		t.Error("utilities not ordered")
	}
}

func TestStrategiesAgreeOnRanking(t *testing.T) {
	tbl := mkCensus(t, 6000, 2)
	ex, exStats, err := Recommend(tbl, target(), views(), Options{K: 4, Strategy: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	sh, shStats, err := Recommend(tbl, target(), views(), Options{K: 4, Strategy: SharedScan})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ex {
		if ex[i].View != sh[i].View {
			t.Errorf("rank %d: %v vs %v", i, ex[i].View, sh[i].View)
		}
	}
	// Shared scan reads each row once; exhaustive once per view.
	if shStats.RowsScanned*int64(len(views())) != exStats.RowsScanned {
		t.Errorf("rows: shared=%d exhaustive=%d views=%d",
			shStats.RowsScanned, exStats.RowsScanned, len(views()))
	}
}

func TestPrunedFindsTopViewCheaper(t *testing.T) {
	tbl := mkCensus(t, 10000, 3)
	sh, shStats, err := Recommend(tbl, target(), views(), Options{K: 1, Strategy: SharedScan})
	if err != nil {
		t.Fatal(err)
	}
	pr, prStats, err := Recommend(tbl, target(), views(), Options{K: 1, Strategy: Pruned, Phases: 10})
	if err != nil {
		t.Fatal(err)
	}
	if pr[0].View != sh[0].View {
		t.Errorf("pruned top %v != shared top %v", pr[0].View, sh[0].View)
	}
	if prStats.ViewsPruned == 0 {
		t.Error("nothing was pruned")
	}
	if prStats.ViewUpdates >= shStats.ViewUpdates {
		t.Errorf("pruned updates %d >= shared %d", prStats.ViewUpdates, shStats.ViewUpdates)
	}
}

func TestOptionsValidation(t *testing.T) {
	tbl := mkCensus(t, 100, 4)
	if _, _, err := Recommend(tbl, target(), nil, Options{K: 1}); !errors.Is(err, ErrNoViews) {
		t.Errorf("no views err = %v", err)
	}
	if _, _, err := Recommend(tbl, target(), views(), Options{K: 0}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, _, err := Recommend(tbl, target(), views(), Options{K: 100}); !errors.Is(err, ErrBadK) {
		t.Errorf("k too big err = %v", err)
	}
	bad := []View{{Dim: "zzz", Measure: "signal", Agg: exec.AggSum}}
	if _, _, err := Recommend(tbl, target(), bad, Options{K: 1}); err == nil {
		t.Error("bad dim should error")
	}
	badM := []View{{Dim: "d1", Measure: "d2", Agg: exec.AggSum}}
	if _, _, err := Recommend(tbl, target(), badM, Options{K: 1}); err == nil {
		t.Error("text measure should error")
	}
	if _, _, err := Recommend(tbl, expr.Cmp("zzz", expr.EQ, storage.Int(1)), views(), Options{K: 1}); err == nil {
		t.Error("bad target predicate should error")
	}
}

func TestCountViewNeedsNoNumericMeasure(t *testing.T) {
	tbl := mkCensus(t, 500, 5)
	vs := []View{{Dim: "d1", Measure: "d2", Agg: exec.AggCount}}
	top, _, err := Recommend(tbl, target(), vs, Options{K: 1, Strategy: SharedScan})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 {
		t.Errorf("top = %v", top)
	}
}

func TestStrategyString(t *testing.T) {
	if Exhaustive.String() != "exhaustive" || SharedScan.String() != "shared-scan" || Pruned.String() != "pruned" {
		t.Error("strategy names")
	}
}
