// Package seedb implements deviation-based visualization recommendation in
// the style of SeeDB [49] (with VizDeck-style ranking [40] as the consumer):
// given a target subset of the data (the user's current selection) and a
// reference (everything else), every candidate view — a (dimension,
// measure, aggregate) triple — is scored by how much the target's grouped
// distribution deviates from the reference's, and the top-k most deviating
// views are recommended.
//
// Three execution strategies reproduce SeeDB's optimization ladder:
// Exhaustive runs two scans per view; SharedScan computes every view's
// aggregates for both subsets in one pass; Pruned adds phased execution
// with confidence-interval pruning that discards hopeless views early.
package seedb

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/metrics"
	"dex/internal/par"
	"dex/internal/storage"
)

// Package-level sentinel errors.
var (
	ErrNoViews = errors.New("seedb: no candidate views")
	ErrBadK    = errors.New("seedb: k out of range")
)

// View is one candidate visualization.
type View struct {
	Dim     string
	Measure string
	Agg     exec.AggFunc
}

// String renders the view as "agg(measure) by dim".
func (v View) String() string {
	return fmt.Sprintf("%s(%s) by %s", v.Agg, v.Measure, v.Dim)
}

// Scored is a view with its deviation utility (EMD between the normalized
// target and reference distributions; higher = more interesting).
type Scored struct {
	View    View
	Utility float64
}

// Stats reports the physical work a strategy performed.
type Stats struct {
	RowsScanned int64 // rows read per scan pass (a shared pass counts each row once)
	ViewUpdates int64 // per-(row,view) accumulator updates — the CPU work
	ViewsPruned int
	Phases      int
}

// Strategy selects the execution plan.
type Strategy uint8

// Execution strategies.
const (
	Exhaustive Strategy = iota
	SharedScan
	Pruned
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Exhaustive:
		return "exhaustive"
	case SharedScan:
		return "shared-scan"
	case Pruned:
		return "pruned"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Candidates enumerates the view space: every dimension × measure ×
// aggregate combination.
func Candidates(dims, measures []string, aggs []exec.AggFunc) []View {
	var out []View
	for _, d := range dims {
		for _, m := range measures {
			for _, a := range aggs {
				out = append(out, View{Dim: d, Measure: m, Agg: a})
			}
		}
	}
	return out
}

// Options configures Recommend.
type Options struct {
	K        int
	Strategy Strategy
	// Phases is the number of data batches for the Pruned strategy
	// (default 10).
	Phases int
	// Delta is the pruning confidence parameter (default 0.05).
	Delta float64
	// Parallelism fans candidate-view evaluation over a worker pool:
	// 0 means GOMAXPROCS, 1 forces sequential execution. Exhaustive
	// parallelizes across views (one scan each), SharedScan across morsels
	// with per-worker accumulators. Pruned stays sequential: its phases are
	// a serial dependence chain (each prune decision needs the previous
	// phase's bounds).
	Parallelism int
}

// Recommend scores every candidate view of the table, where the target
// subset is the rows matching targetPred and the reference is the rest,
// and returns the top-k by utility plus work stats.
func Recommend(t *storage.Table, targetPred *expr.Pred, views []View, opt Options) ([]Scored, Stats, error) {
	if len(views) == 0 {
		return nil, Stats{}, ErrNoViews
	}
	if opt.K <= 0 || opt.K > len(views) {
		return nil, Stats{}, fmt.Errorf("k=%d views=%d: %w", opt.K, len(views), ErrBadK)
	}
	if opt.Phases <= 0 {
		opt.Phases = 10
	}
	if opt.Delta <= 0 {
		opt.Delta = 0.05
	}
	inTarget, err := targetMask(t, targetPred)
	if err != nil {
		return nil, Stats{}, err
	}
	switch opt.Strategy {
	case Exhaustive:
		return runExhaustive(t, inTarget, views, opt)
	case SharedScan:
		return runShared(t, inTarget, views, opt)
	case Pruned:
		return runPruned(t, inTarget, views, opt)
	default:
		return nil, Stats{}, fmt.Errorf("seedb: unknown strategy %v", opt.Strategy)
	}
}

func targetMask(t *storage.Table, p *expr.Pred) ([]bool, error) {
	sel, err := expr.Filter(t, p)
	if err != nil {
		return nil, err
	}
	mask := make([]bool, t.NumRows())
	for _, r := range sel {
		mask[r] = true
	}
	return mask, nil
}

// viewAcc accumulates one view's grouped aggregates for target + reference.
type viewAcc struct {
	view View
	tgt  map[string]*agg
	ref  map[string]*agg
}

type agg struct {
	sum   float64
	count float64
	min   float64
	max   float64
}

func newViewAcc(v View) *viewAcc {
	return &viewAcc{view: v, tgt: map[string]*agg{}, ref: map[string]*agg{}}
}

// merge folds another accumulator for the same view into va (the combine
// step of per-worker shared scans).
func (va *viewAcc) merge(o *viewAcc) {
	mergeMap := func(dst, src map[string]*agg) {
		for g, b := range src {
			a, ok := dst[g]
			if !ok {
				dst[g] = b
				continue
			}
			a.sum += b.sum
			a.count += b.count
			if b.min < a.min {
				a.min = b.min
			}
			if b.max > a.max {
				a.max = b.max
			}
		}
	}
	mergeMap(va.tgt, o.tgt)
	mergeMap(va.ref, o.ref)
}

func (va *viewAcc) add(group string, x float64, target bool) {
	m := va.ref
	if target {
		m = va.tgt
	}
	a, ok := m[group]
	if !ok {
		a = &agg{min: math.Inf(1), max: math.Inf(-1)}
		m[group] = a
	}
	a.sum += x
	a.count++
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
}

// utility computes the EMD between the normalized target and reference
// distributions over the union of groups.
func (va *viewAcc) utility() float64 {
	groups := map[string]bool{}
	for g := range va.tgt {
		groups[g] = true
	}
	for g := range va.ref {
		groups[g] = true
	}
	keys := make([]string, 0, len(groups))
	for g := range groups {
		keys = append(keys, g)
	}
	sort.Strings(keys)
	val := func(a *agg) float64 {
		if a == nil || a.count == 0 {
			return 0
		}
		switch va.view.Agg {
		case exec.AggCount:
			return a.count
		case exec.AggSum:
			return a.sum
		case exec.AggAvg:
			return a.sum / a.count
		case exec.AggMin:
			return a.min
		case exec.AggMax:
			return a.max
		default:
			return 0
		}
	}
	p := make([]float64, len(keys))
	q := make([]float64, len(keys))
	for i, g := range keys {
		p[i] = math.Abs(val(va.tgt[g]))
		q[i] = math.Abs(val(va.ref[g]))
	}
	return metrics.EMD1D(p, q)
}

// colPair is one view's resolved dimension and measure columns.
type colPair struct {
	dim storage.Column
	mea storage.Column
}

// resolvePairs resolves and type-checks the columns of every accumulator's
// view once, so scan workers share them without re-resolving per morsel.
func resolvePairs(t *storage.Table, accs []*viewAcc) ([]colPair, error) {
	pairs := make([]colPair, len(accs))
	for i, va := range accs {
		dc, err := t.ColumnByName(va.view.Dim)
		if err != nil {
			return nil, err
		}
		mc, err := t.ColumnByName(va.view.Measure)
		if err != nil {
			return nil, err
		}
		if mc.Type() == storage.TString && va.view.Agg != exec.AggCount {
			return nil, fmt.Errorf("seedb: measure %q is TEXT", va.view.Measure)
		}
		pairs[i] = colPair{dim: dc, mea: mc}
	}
	return pairs, nil
}

// scanRange feeds rows [lo,hi) into the accumulators through pre-resolved
// column pairs.
func scanRange(pairs []colPair, inTarget []bool, accs []*viewAcc, lo, hi int, stats *Stats) {
	for r := lo; r < hi; r++ {
		stats.RowsScanned++
		for i, va := range accs {
			stats.ViewUpdates++
			g := pairs[i].dim.Value(r).String()
			x := 0.0
			if va.view.Agg != exec.AggCount {
				x = pairs[i].mea.Value(r).AsFloat()
			}
			va.add(g, x, inTarget[r])
		}
	}
}

// scanViews resolves the accumulators' columns and feeds rows [lo,hi) in.
func scanViews(t *storage.Table, inTarget []bool, accs []*viewAcc, lo, hi int, stats *Stats) error {
	pairs, err := resolvePairs(t, accs)
	if err != nil {
		return err
	}
	scanRange(pairs, inTarget, accs, lo, hi, stats)
	return nil
}

// add accumulates another run's work counters into s.
func (s *Stats) add(o Stats) {
	s.RowsScanned += o.RowsScanned
	s.ViewUpdates += o.ViewUpdates
	s.ViewsPruned += o.ViewsPruned
	s.Phases += o.Phases
}

func topK(accs []*viewAcc, k int) []Scored {
	scored := make([]Scored, len(accs))
	for i, va := range accs {
		scored[i] = Scored{View: va.view, Utility: va.utility()}
	}
	sort.SliceStable(scored, func(a, b int) bool { return scored[a].Utility > scored[b].Utility })
	if k > len(scored) {
		k = len(scored)
	}
	return scored[:k]
}

func runExhaustive(t *storage.Table, inTarget []bool, views []View, opt Options) ([]Scored, Stats, error) {
	stats := Stats{}
	accs := make([]*viewAcc, len(views))
	for i, v := range views {
		accs[i] = newViewAcc(v)
	}
	// Resolve (and type-check) every view's columns before fanning out so a
	// bad view fails the whole call deterministically.
	pairs, err := resolvePairs(t, accs)
	if err != nil {
		return nil, stats, err
	}
	// One separate full pass per view — the naive plan's cost. Views are
	// independent, so they fan out across the pool one task per view.
	pool := par.NewPool(par.Options{Parallelism: opt.Parallelism})
	perView := make([]Stats, len(views))
	_ = pool.Do(len(views), func(i int) error {
		scanRange(pairs[i:i+1], inTarget, accs[i:i+1], 0, t.NumRows(), &perView[i])
		return nil
	})
	for _, s := range perView {
		stats.add(s)
	}
	return topK(accs, opt.K), stats, nil
}

func runShared(t *storage.Table, inTarget []bool, views []View, opt Options) ([]Scored, Stats, error) {
	stats := Stats{}
	accs := make([]*viewAcc, len(views))
	for i, v := range views {
		accs[i] = newViewAcc(v)
	}
	pairs, err := resolvePairs(t, accs)
	if err != nil {
		return nil, stats, err
	}
	n := t.NumRows()
	pool := par.NewPool(par.Options{Parallelism: opt.Parallelism})
	w := pool.WorkersFor(n)
	if w <= 1 {
		scanRange(pairs, inTarget, accs, 0, n, &stats)
		return topK(accs, opt.K), stats, nil
	}
	// One shared pass split over morsels: each worker owns a full set of
	// thread-local accumulators, merged per view afterwards.
	locals := make([][]*viewAcc, w)
	perWorker := make([]Stats, w)
	for wi := range locals {
		locals[wi] = make([]*viewAcc, len(views))
		for i, v := range views {
			locals[wi][i] = newViewAcc(v)
		}
	}
	pool.ForEach(n, func(worker, lo, hi int) {
		scanRange(pairs, inTarget, locals[worker], lo, hi, &perWorker[worker])
	})
	for wi := range locals {
		stats.add(perWorker[wi])
		for i := range accs {
			accs[i].merge(locals[wi][i])
		}
	}
	return topK(accs, opt.K), stats, nil
}

func runPruned(t *storage.Table, inTarget []bool, views []View, opt Options) ([]Scored, Stats, error) {
	stats := Stats{}
	live := make([]*viewAcc, len(views))
	for i, v := range views {
		live[i] = newViewAcc(v)
	}
	n := t.NumRows()
	batch := (n + opt.Phases - 1) / opt.Phases
	if batch == 0 {
		batch = n
	}
	// Empirical confidence intervals: each phase yields a fresh running
	// utility estimate per view; the spread of those estimates across
	// phases bounds how much the final utility can still move. (SeeDB uses
	// worst-case Hoeffding bounds; the empirical variant prunes the same
	// views much earlier on stable utilities.)
	trajectories := map[*viewAcc]*metrics.Stream{}
	for _, va := range live {
		trajectories[va] = &metrics.Stream{}
	}
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		if err := scanViews(t, inTarget, live, lo, hi, &stats); err != nil {
			return nil, stats, err
		}
		stats.Phases++
		if hi >= n || len(live) <= opt.K {
			continue
		}
		type bounded struct {
			va        *viewAcc
			lower, up float64
		}
		bs := make([]bounded, len(live))
		canPrune := true
		for i, va := range live {
			u := va.utility()
			tr := trajectories[va]
			tr.Add(u)
			if tr.N() < 2 {
				canPrune = false
			}
			eps := metrics.Z95*tr.StdErr() + math.Sqrt(math.Log(2/opt.Delta))/float64(n/batch+1)/10
			bs[i] = bounded{va: va, lower: u - eps, up: u + eps}
		}
		if !canPrune {
			continue
		}
		sort.Slice(bs, func(a, b int) bool { return bs[a].lower > bs[b].lower })
		kthLower := bs[opt.K-1].lower
		var kept []*viewAcc
		for _, b := range bs {
			if b.up >= kthLower {
				kept = append(kept, b.va)
			} else {
				stats.ViewsPruned++
			}
		}
		live = kept
	}
	return topK(live, opt.K), stats, nil
}
