package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStreamMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(500)
		xs := make([]float64, n)
		var s Stream
		for i := range xs {
			xs[i] = rng.NormFloat64()*50 + 10
			s.Add(xs[i])
		}
		return math.Abs(s.Mean()-Mean(xs)) < 1e-9 &&
			math.Abs(s.Variance()-Variance(xs)) < 1e-6 &&
			math.Abs(s.Sum()-Sum(xs)) < 1e-6 &&
			s.N() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStreamMinMax(t *testing.T) {
	var s Stream
	for _, x := range []float64{3, -1, 7, 2} {
		s.Add(x)
	}
	if s.Min() != -1 || s.Max() != 7 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 || s.MeanCI(Z95) != 0 {
		t.Error("empty stream should be all zeros")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
	if Median([]float64{1, 3}) != 2 {
		t.Error("median interpolation")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Error("rel err")
	}
	if RelErr(5, 0) != 5 {
		t.Error("rel err zero truth")
	}
}

func TestNormalize(t *testing.T) {
	n := Normalize([]float64{1, 3})
	if n[0] != 0.25 || n[1] != 0.75 {
		t.Errorf("normalize = %v", n)
	}
	u := Normalize([]float64{0, 0})
	if u[0] != 0.5 || u[1] != 0.5 {
		t.Errorf("zero normalize = %v", u)
	}
}

func TestDistances(t *testing.T) {
	p := []float64{1, 0, 0}
	q := []float64{0, 0, 1}
	if EMD1D(p, p) != 0 {
		t.Error("EMD self")
	}
	if got := EMD1D(p, q); math.Abs(got-2) > 1e-9 {
		t.Errorf("EMD opposite = %v, want 2", got)
	}
	if KLDivergence(p, p) > 1e-6 {
		t.Error("KL self should be ~0")
	}
	if KLDivergence(p, q) < 1 {
		t.Error("KL of disjoint should be large")
	}
	if L2([]float64{0, 0}, []float64{3, 4}) != 5 {
		t.Error("L2")
	}
}

func TestEMDSymmetricProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		p, q := make([]float64, 8), make([]float64, 8)
		for i := range p {
			p[i], q[i] = math.Abs(a[i]), math.Abs(b[i])
		}
		return math.Abs(EMD1D(p, q)-EMD1D(q, p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	for i, c := range counts {
		if c != 2 {
			t.Errorf("bin %d = %v, want 2", i, c)
		}
	}
	if edges[0] != 0 || math.Abs(edges[4]-7.2) > 1e-9 {
		t.Errorf("edges = %v", edges)
	}
	// Degenerate: all equal.
	counts, _ = Histogram([]float64{5, 5, 5}, 4)
	if counts[0] != 3 {
		t.Errorf("degenerate counts = %v", counts)
	}
}

func TestHistogramMass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		counts, _ := Histogram(xs, 16)
		return int(Sum(counts)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestF1(t *testing.T) {
	if F1(0, 0, 0) != 0 {
		t.Error("F1 zero")
	}
	if got := F1(10, 0, 0); got != 1 {
		t.Errorf("perfect F1 = %v", got)
	}
	if got := F1(5, 5, 5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("F1 = %v, want 0.5", got)
	}
}
