package metrics

import "math"

// LogHist is a fixed-footprint histogram with logarithmically spaced
// buckets, built for latency distributions: tail quantiles (p95/p99) need
// fine resolution near zero and coarse resolution in the tail, which
// log-spaced buckets give at a few hundred bytes regardless of how many
// observations stream in. Values are dimensionless (the service layer feeds
// seconds); each bucket spans a constant ratio Growth, so any quantile is
// reported with bounded relative error ~(Growth-1).
//
// LogHist is not synchronized, like the rest of this package; concurrent
// writers wrap it in a mutex.
type LogHist struct {
	counts []int64
	n      int64
	sum    float64
	max    float64
}

// Log-bucket geometry: bucket i covers [Floor*Growth^i, Floor*Growth^(i+1)).
// Floor 1e-6 (a microsecond, in seconds) to ~70 s at Growth 1.08 needs
// ~230 buckets; values outside the range clamp to the edge buckets.
const (
	histFloor   = 1e-6
	histGrowth  = 1.08
	histBuckets = 240
)

// NewLogHist returns an empty histogram.
func NewLogHist() *LogHist {
	return &LogHist{counts: make([]int64, histBuckets)}
}

func bucketOf(x float64) int {
	// NaN fails every comparison, so without this guard it would fall
	// through to int(math.Log(NaN)) — an implementation-defined integer
	// (minInt on amd64) and a panic when used as a bucket index.
	if math.IsNaN(x) || x <= histFloor {
		return 0
	}
	b := int(math.Log(x/histFloor) / math.Log(histGrowth))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketValue returns the geometric midpoint of bucket b — the value
// quantile queries report for observations that landed there.
func bucketValue(b int) float64 {
	return histFloor * math.Pow(histGrowth, float64(b)+0.5)
}

// Add folds one observation in. NaN is clamped to 0 so the running sum
// and mean stay finite.
func (h *LogHist) Add(x float64) {
	if math.IsNaN(x) {
		x = 0
	}
	h.counts[bucketOf(x)]++
	h.n++
	h.sum += x
	if x > h.max {
		h.max = x
	}
}

// N returns the number of observations.
func (h *LogHist) N() int64 { return h.n }

// Mean returns the exact running mean (0 if empty) — the sum is tracked
// outside the buckets, so the mean carries no bucketing error.
func (h *LogHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest observation seen (exact).
func (h *LogHist) Max() float64 { return h.max }

// Quantile returns the q-th quantile with relative error bounded by the
// bucket growth factor (~8%). q outside [0,1] — including NaN, whose
// float-to-int conversion is platform-dependent — clamps to the nearest
// edge (NaN to 0). Empty histograms yield 0.
func (h *LogHist) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketValue(b)
		}
	}
	return h.max
}

// Sum returns the exact running sum of observations.
func (h *LogHist) Sum() float64 { return h.sum }

// Clone returns an independent deep copy — the snapshot a renderer can
// walk outside whatever lock guards the live histogram.
func (h *LogHist) Clone() *LogHist {
	return &LogHist{
		counts: append([]int64(nil), h.counts...),
		n:      h.n,
		sum:    h.sum,
		max:    h.max,
	}
}

// HistBucket is one cumulative bucket in Prometheus exposition order:
// Count observations were <= UpperBound.
type HistBucket struct {
	UpperBound float64
	Count      int64
}

// CumBuckets returns the cumulative counts of the non-empty buckets,
// upper bounds ascending — the `le` series of a Prometheus histogram.
// The caller appends the `+Inf` bucket itself (its count is N()).
func (h *LogHist) CumBuckets() []HistBucket {
	var out []HistBucket
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, HistBucket{
			UpperBound: histFloor * math.Pow(histGrowth, float64(i+1)),
			Count:      cum,
		})
	}
	return out
}

// Merge folds another histogram into h (same fixed geometry).
func (h *LogHist) Merge(o *LogHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset zeroes the histogram in place.
func (h *LogHist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n, h.sum, h.max = 0, 0, 0
}
