// Package metrics collects the statistical helpers used across the
// approximate-query, online-aggregation and visualization-recommendation
// modules: streaming moments (Welford), normal confidence intervals,
// quantiles, histograms, and distribution distances (KL, EMD, L2).
package metrics

import (
	"math"
	"sort"
)

// Z95 and Z99 are the two-sided standard-normal critical values used for
// 95% and 99% confidence intervals.
const (
	Z95 = 1.959963984540054
	Z99 = 2.5758293035489004
)

// Stream accumulates count, mean and variance online (Welford's algorithm),
// so online aggregation can emit running estimates in O(1) per value.
type Stream struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add folds a value into the stream.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of values seen.
func (s *Stream) N() int64 { return s.n }

// Mean returns the running mean (0 if empty).
func (s *Stream) Mean() float64 { return s.mean }

// Sum returns the running sum.
func (s *Stream) Sum() float64 { return s.sum }

// Min returns the smallest value seen (0 if empty).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest value seen (0 if empty).
func (s *Stream) Max() float64 { return s.max }

// Variance returns the sample variance (n-1 denominator); 0 for n < 2.
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Stream) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// MeanCI returns the half-width of the z-based confidence interval of the
// mean at the given critical value (e.g. Z95).
func (s *Stream) MeanCI(z float64) float64 { return z * s.StdErr() }

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the sample variance of xs (n-1 denominator).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0<=q<=1) of xs by linear
// interpolation on the sorted copy. Empty input yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// RelErr returns |est-truth| / |truth|, or |est| when truth == 0.
func RelErr(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// Normalize scales xs to sum to 1; uniform if the sum is 0.
// It returns a new slice.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	var s float64
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		for i := range out {
			out[i] = 1 / float64(len(xs))
		}
		return out
	}
	for i, x := range xs {
		out[i] = x / s
	}
	return out
}

// KLDivergence returns KL(p||q) over two distributions of equal length,
// after normalizing both and epsilon-smoothing q so it is defined everywhere.
func KLDivergence(p, q []float64) float64 {
	const eps = 1e-9
	pn, qn := Normalize(p), Normalize(q)
	var d float64
	for i := range pn {
		if pn[i] == 0 {
			continue
		}
		d += pn[i] * math.Log(pn[i]/(qn[i]+eps))
	}
	return d
}

// EMD1D returns the 1-D earth mover's distance between two distributions of
// equal length (after normalization): the L1 distance of their CDFs. This is
// SeeDB's default deviation metric between grouped aggregates.
func EMD1D(p, q []float64) float64 {
	pn, qn := Normalize(p), Normalize(q)
	var cp, cq, d float64
	for i := range pn {
		cp += pn[i]
		cq += qn[i]
		d += math.Abs(cp - cq)
	}
	return d
}

// L2 returns the Euclidean distance between two equal-length vectors.
func L2(p, q []float64) float64 {
	var d float64
	for i := range p {
		dd := p[i] - q[i]
		d += dd * dd
	}
	return math.Sqrt(d)
}

// Histogram builds an equi-width histogram of xs with the given number of
// bins over [min,max] (computed from the data). It returns bin counts and
// bin lower edges. Degenerate input (all equal) lands in bin 0.
func Histogram(xs []float64, bins int) (counts []float64, edges []float64) {
	counts = make([]float64, bins)
	edges = make([]float64, bins)
	if len(xs) == 0 || bins == 0 {
		return counts, edges
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	w := (hi - lo) / float64(bins)
	for i := range edges {
		edges[i] = lo + w*float64(i)
	}
	if w == 0 {
		counts[0] = float64(len(xs))
		return counts, edges
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts, edges
}

// F1 returns the harmonic mean of precision and recall computed from
// true/false positive/negative counts.
func F1(tp, fp, fn int) float64 {
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}
