package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition parses Prometheus text exposition format (0.0.4)
// and checks the structural invariants a scraper relies on:
//
//   - every non-comment line is `name{labels} value` with a parseable
//     float value and well-formed labels;
//   - every sample name is declared by a preceding # TYPE line;
//   - for each histogram series (same name and labels modulo `le`):
//     `le` upper bounds strictly ascend, cumulative counts are
//     monotonically non-decreasing, the `+Inf` bucket exists, and it
//     equals the series' `_count` sample;
//   - counters never go negative.
//
// It is shared by the server's /metrics tests, the chaos harness, and
// the metrics-smoke gate, so a formatting regression fails everywhere.
func ValidateExposition(r io.Reader) error {
	type bucket struct {
		le  float64
		cnt int64
	}
	buckets := map[string][]bucket{} // histogram base name+labels -> le series
	counts := map[string]int64{}     // histogram base name+labels -> _count value
	types := map[string]string{}     // metric family -> declared TYPE
	sums := map[string]bool{}        // histogram base name+labels with a _sum

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	nSamples := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		name, labels, val, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		nSamples++
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		typ, ok := types[family]
		if !ok {
			// _count/_sum may also belong to a plain family named that way.
			if typ, ok = types[name]; !ok {
				return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
			}
			family = name
		}
		switch typ {
		case "counter":
			if val < 0 {
				return fmt.Errorf("line %d: counter %s is negative (%g)", lineNo, name, val)
			}
		case "histogram":
			rest, le, hasLE := splitLE(labels)
			key := family + "{" + rest + "}"
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !hasLE {
					return fmt.Errorf("line %d: histogram bucket %s missing le label", lineNo, name)
				}
				ub, err := parseLE(le)
				if err != nil {
					return fmt.Errorf("line %d: %w", lineNo, err)
				}
				buckets[key] = append(buckets[key], bucket{ub, int64(val)})
			case strings.HasSuffix(name, "_count"):
				counts[key] = int64(val)
			case strings.HasSuffix(name, "_sum"):
				if math.IsNaN(val) || math.IsInf(val, 0) {
					return fmt.Errorf("line %d: non-finite histogram sum %g", lineNo, val)
				}
				sums[key] = true
			default:
				return fmt.Errorf("line %d: histogram family %s has stray sample %s", lineNo, family, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if nSamples == 0 {
		return fmt.Errorf("no samples in exposition")
	}

	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		bs := buckets[key]
		var inf *bucket
		for i := range bs {
			if i > 0 {
				if bs[i].le <= bs[i-1].le {
					return fmt.Errorf("%s: le bounds not ascending (%g after %g)", key, bs[i].le, bs[i-1].le)
				}
				if bs[i].cnt < bs[i-1].cnt {
					return fmt.Errorf("%s: cumulative counts decrease (%d after %d at le=%g)", key, bs[i].cnt, bs[i-1].cnt, bs[i].le)
				}
			}
			if math.IsInf(bs[i].le, 1) {
				inf = &bs[i]
			}
		}
		if inf == nil {
			return fmt.Errorf("%s: no +Inf bucket", key)
		}
		cnt, ok := counts[key]
		if !ok {
			return fmt.Errorf("%s: no _count sample", key)
		}
		if cnt != inf.cnt {
			return fmt.Errorf("%s: _count %d != +Inf bucket %d", key, cnt, inf.cnt)
		}
		if !sums[key] {
			return fmt.Errorf("%s: no _sum sample", key)
		}
	}
	return nil
}

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})?\s+(\S+)$`)

func parseSample(line string) (name, labels string, val float64, err error) {
	m := sampleRe.FindStringSubmatch(line)
	if m == nil {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	v, err := strconv.ParseFloat(m[3], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	if m[2] != "" {
		for _, pair := range splitLabels(m[2]) {
			eq := strings.Index(pair, "=")
			if eq <= 0 || len(pair) < eq+3 || pair[eq+1] != '"' || pair[len(pair)-1] != '"' {
				return "", "", 0, fmt.Errorf("malformed label %q in %q", pair, line)
			}
		}
	}
	return m[1], m[2], v, nil
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// splitLE removes the le label from a label string, returning the rest
// (sorted, for a stable series key) and the le value.
func splitLE(labels string) (rest, le string, ok bool) {
	var kept []string
	for _, pair := range splitLabels(labels) {
		if strings.HasPrefix(pair, "le=") {
			le = strings.Trim(pair[len("le="):], `"`)
			ok = true
			continue
		}
		if pair != "" {
			kept = append(kept, pair)
		}
	}
	sort.Strings(kept)
	return strings.Join(kept, ","), le, ok
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le %q: %w", s, err)
	}
	return v, nil
}
