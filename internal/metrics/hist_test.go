package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestLogHistQuantileAccuracy checks histogram quantiles track exact
// quantiles within the documented relative error on a lognormal latency
// shape (the distribution service latencies actually follow).
func TestLogHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewLogHist()
	xs := make([]float64, 50_000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()*1.2 - 6) // around ~2.5ms
		h.Add(xs[i])
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := Quantile(xs, q)
		got := h.Quantile(q)
		if rel := RelErr(got, exact); rel > 0.10 {
			t.Errorf("q=%.2f: hist=%g exact=%g rel err %.3f > 0.10", q, got, exact, rel)
		}
	}
	if h.N() != int64(len(xs)) {
		t.Errorf("N = %d, want %d", h.N(), len(xs))
	}
	if rel := RelErr(h.Mean(), Mean(xs)); rel > 1e-12 {
		t.Errorf("mean drifted: hist=%g exact=%g", h.Mean(), Mean(xs))
	}
}

// TestLogHistEdges pins empty/clamping/merge behavior.
func TestLogHistEdges(t *testing.T) {
	h := NewLogHist()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Add(0)        // clamps to the floor bucket
	h.Add(1e9)      // clamps to the last bucket
	h.Add(3e-3)     // a normal latency
	if h.N() != 3 {
		t.Fatalf("N = %d, want 3", h.N())
	}
	if h.Max() != 1e9 {
		t.Fatalf("Max = %g, want 1e9 (max is exact, not bucketed)", h.Max())
	}
	if q := h.Quantile(0); q <= 0 {
		t.Fatalf("Quantile(0) = %g, want > 0", q)
	}

	o := NewLogHist()
	for i := 0; i < 100; i++ {
		o.Add(1e-3)
	}
	h.Merge(o)
	if h.N() != 103 {
		t.Fatalf("merged N = %d, want 103", h.N())
	}
	if med := h.Quantile(0.5); RelErr(med, 1e-3) > 0.10 {
		t.Fatalf("merged median %g, want ~1e-3", med)
	}
	h.Reset()
	if h.N() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("Reset did not clear the histogram")
	}
}
