package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestLogHistQuantileAccuracy checks histogram quantiles track exact
// quantiles within the documented relative error on a lognormal latency
// shape (the distribution service latencies actually follow).
func TestLogHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewLogHist()
	xs := make([]float64, 50_000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()*1.2 - 6) // around ~2.5ms
		h.Add(xs[i])
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := Quantile(xs, q)
		got := h.Quantile(q)
		if rel := RelErr(got, exact); rel > 0.10 {
			t.Errorf("q=%.2f: hist=%g exact=%g rel err %.3f > 0.10", q, got, exact, rel)
		}
	}
	if h.N() != int64(len(xs)) {
		t.Errorf("N = %d, want %d", h.N(), len(xs))
	}
	if rel := RelErr(h.Mean(), Mean(xs)); rel > 1e-12 {
		t.Errorf("mean drifted: hist=%g exact=%g", h.Mean(), Mean(xs))
	}
}

// TestLogHistEdges pins empty/clamping/merge behavior.
func TestLogHistEdges(t *testing.T) {
	h := NewLogHist()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Add(0)    // clamps to the floor bucket
	h.Add(1e9)  // clamps to the last bucket
	h.Add(3e-3) // a normal latency
	if h.N() != 3 {
		t.Fatalf("N = %d, want 3", h.N())
	}
	if h.Max() != 1e9 {
		t.Fatalf("Max = %g, want 1e9 (max is exact, not bucketed)", h.Max())
	}
	if q := h.Quantile(0); q <= 0 {
		t.Fatalf("Quantile(0) = %g, want > 0", q)
	}

	o := NewLogHist()
	for i := 0; i < 100; i++ {
		o.Add(1e-3)
	}
	h.Merge(o)
	if h.N() != 103 {
		t.Fatalf("merged N = %d, want 103", h.N())
	}
	if med := h.Quantile(0.5); RelErr(med, 1e-3) > 0.10 {
		t.Fatalf("merged median %g, want ~1e-3", med)
	}
	h.Reset()
	if h.N() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("Reset did not clear the histogram")
	}
}

func TestLogHistQuantileEdgeCases(t *testing.T) {
	h := NewLogHist()
	for i := 1; i <= 100; i++ {
		h.Add(float64(i) / 1000) // 1ms .. 100ms
	}
	lo, hi := h.Quantile(0), h.Quantile(1)
	cases := []struct {
		name string
		q    float64
		want float64
	}{
		{"nan", math.NaN(), lo},
		{"negative", -1, lo},
		{"zero", 0, lo},
		{"one", 1, hi},
		{"above-one", 2, hi},
		{"tiny", 1e-12, lo},
	}
	for _, tc := range cases {
		got := h.Quantile(tc.q)
		if math.IsNaN(got) || got != tc.want {
			t.Errorf("Quantile(%s=%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
	// Edge quantiles must bracket the data: q=0 near the minimum, q=1 at
	// most ~one bucket above the maximum.
	if lo > 0.0012 || hi < 0.09 {
		t.Fatalf("edge quantiles off: q0=%v q1=%v", lo, hi)
	}
}

func TestLogHistNaNObservation(t *testing.T) {
	h := NewLogHist()
	h.Add(math.NaN()) // used to index counts[minInt] and panic
	h.Add(0.5)
	if h.N() != 2 {
		t.Fatalf("N = %d, want 2", h.N())
	}
	if math.IsNaN(h.Sum()) || math.IsNaN(h.Mean()) || math.IsNaN(h.Max()) {
		t.Fatalf("NaN leaked into aggregates: sum=%v mean=%v max=%v", h.Sum(), h.Mean(), h.Max())
	}
	if got := h.Quantile(0.99); math.IsNaN(got) {
		t.Fatalf("Quantile went NaN")
	}
}

func TestLogHistCumBuckets(t *testing.T) {
	h := NewLogHist()
	vals := []float64{1e-7, 0.001, 0.001, 0.05, 3, 200}
	for _, v := range vals {
		h.Add(v)
	}
	bs := h.CumBuckets()
	if len(bs) == 0 {
		t.Fatal("no buckets")
	}
	for i := range bs {
		if i > 0 {
			if bs[i].UpperBound <= bs[i-1].UpperBound {
				t.Fatalf("bounds not ascending at %d: %+v", i, bs)
			}
			if bs[i].Count < bs[i-1].Count {
				t.Fatalf("cumulative counts decrease at %d: %+v", i, bs)
			}
		}
	}
	if last := bs[len(bs)-1].Count; last != h.N() {
		t.Fatalf("final cumulative count %d != N %d", last, h.N())
	}
	// Every observation must sit at or below the bound of the bucket it
	// was counted in (cumulative semantics).
	if bs[0].Count < 1 || bs[0].UpperBound < 1e-7 {
		t.Fatalf("first bucket wrong: %+v", bs[0])
	}
}

func TestLogHistClone(t *testing.T) {
	h := NewLogHist()
	h.Add(0.25)
	c := h.Clone()
	h.Add(0.5)
	if c.N() != 1 || h.N() != 2 {
		t.Fatalf("clone not independent: clone N=%d orig N=%d", c.N(), h.N())
	}
	if c.Max() != 0.25 || c.Sum() != 0.25 {
		t.Fatalf("clone lost state: max=%v sum=%v", c.Max(), c.Sum())
	}
}
