package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"dex/internal/fault"
)

// fpCSVRead injects storage-layer read failures: it is hit once when a CSV
// load begins and once per record, so policies can fail a load at its start
// (error-once) or partway through (error-rate) — the mid-load storage-error
// case the chaos harness exercises.
var fpCSVRead = fault.Register("storage/csv-read")

// ReadCSV parses an entire CSV stream into a table. The first record is the
// header. Column types are inferred from the first data record (INT, then
// FLOAT, then TEXT); later records that fail the inferred type widen INT to
// FLOAT, and anything unparsable falls back to TEXT for that column by
// re-reading is avoided: the value is stored via best-effort parse with an
// error returned instead. This is the "load everything upfront" baseline the
// adaptive-loading work (NoDB [8,28]) compares against.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	if err := fpCSVRead.Hit(); err != nil {
		return nil, err
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: read CSV header: %w", err)
	}
	names := append([]string(nil), header...)

	first, err := cr.Read()
	if err == io.EOF {
		schema := make(Schema, len(names))
		for i, n := range names {
			schema[i] = Field{Name: n, Type: TString}
		}
		return NewTable(name, schema)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: read CSV row: %w", err)
	}
	schema := make(Schema, len(names))
	for i, n := range names {
		if i < len(first) {
			schema[i] = Field{Name: n, Type: InferType(first[i])}
		} else {
			schema[i] = Field{Name: n, Type: TString}
		}
	}
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	appendRecord := func(rec []string) error {
		vals := make([]Value, len(schema))
		for i := range schema {
			s := ""
			if i < len(rec) {
				s = rec[i]
			}
			v, perr := ParseValue(s, schema[i].Type)
			if perr != nil {
				return perr
			}
			vals[i] = v
		}
		return t.AppendRow(vals...)
	}
	if err := appendRecord(first); err != nil {
		return nil, err
	}
	for {
		if err := fpCSVRead.Hit(); err != nil {
			return nil, err
		}
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: read CSV row: %w", err)
		}
		if err := appendRecord(rec); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReadCSVFile loads a CSV file from disk via ReadCSV.
func ReadCSVFile(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	return ReadCSV(name, f)
}

// WriteCSV writes the table, header included, as CSV.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return fmt.Errorf("storage: write CSV header: %w", err)
	}
	rec := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for c := 0; c < t.NumCols(); c++ {
			rec[c] = t.Column(c).Value(r).String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: write CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to a CSV file on disk.
func WriteCSVFile(t *Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := WriteCSV(t, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
