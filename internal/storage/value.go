// Package storage implements the in-memory column-store substrate that every
// exploration technique in this repository builds on: typed values, columns,
// schemas and tables, plus gather/append primitives and CSV import/export.
//
// The design follows the main-memory column stores the surveyed adaptive
// indexing work targets (MonetDB-style): a table is a set of dense, equally
// long arrays, one per attribute, and row identity is positional.
package storage

import (
	"fmt"
	"strconv"
	"strings"
)

// Type identifies the physical type of a value or column.
type Type uint8

// Supported physical types.
const (
	TInt Type = iota // 64-bit signed integer
	TFloat
	TString
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "TEXT"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a dynamically typed scalar. It is a small tagged union; exactly
// one of the payload fields is meaningful, selected by Typ.
type Value struct {
	Typ Type
	I   int64
	F   float64
	S   string
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{Typ: TInt, I: i} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{Typ: TFloat, F: f} }

// String_ returns a string Value. The trailing underscore avoids colliding
// with the fmt.Stringer method.
func String_(s string) Value { return Value{Typ: TString, S: s} }

// IsNumeric reports whether the value is an INT or FLOAT.
func (v Value) IsNumeric() bool { return v.Typ == TInt || v.Typ == TFloat }

// AsFloat converts a numeric value to float64. Strings yield 0.
func (v Value) AsFloat() float64 {
	switch v.Typ {
	case TInt:
		return float64(v.I)
	case TFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt converts a numeric value to int64, truncating floats. Strings yield 0.
func (v Value) AsInt() int64 {
	switch v.Typ {
	case TInt:
		return v.I
	case TFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// String renders the value for display and CSV export.
func (v Value) String() string {
	switch v.Typ {
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return v.S
	default:
		return "?"
	}
}

// Compare orders two values. Numeric types compare numerically across
// INT/FLOAT; strings compare lexicographically. Comparing a numeric value
// with a string orders the numeric first (stable arbitrary rule, needed so
// sorts never panic on mixed data).
func (v Value) Compare(o Value) int {
	vn, on := v.IsNumeric(), o.IsNumeric()
	switch {
	case vn && on:
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case vn && !on:
		return -1
	case !vn && on:
		return 1
	default:
		return strings.Compare(v.S, o.S)
	}
}

// Equal reports whether two values compare equal under Compare.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// ParseValue parses s as the given type.
func ParseValue(s string, t Type) (Value, error) {
	switch t {
	case TInt:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse %q as INT: %w", s, err)
		}
		return Int(i), nil
	case TFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse %q as FLOAT: %w", s, err)
		}
		return Float(f), nil
	case TString:
		return String_(s), nil
	default:
		return Value{}, fmt.Errorf("parse %q: unknown type %v", s, t)
	}
}

// InferType guesses the narrowest type that can represent s,
// preferring INT over FLOAT over TEXT.
func InferType(s string) Type {
	s = strings.TrimSpace(s)
	if _, err := strconv.ParseInt(s, 10, 64); err == nil {
		return TInt
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return TFloat
	}
	return TString
}
