package storage

import (
	"math/rand"
	"testing"
)

// TestRLECursorMatchesValue drives a cursor through ascending, strided,
// random and backward position sequences and holds it equal to the
// binary-searching Value accessor, including positions that cross the
// forward-walk limit in one jump.
func TestRLECursorMatchesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 10000)
	run := int64(0)
	for i := range vals {
		if i == 0 || rng.Intn(3) == 0 { // ~3-row runs
			run = int64(rng.Intn(40))
		}
		vals[i] = run
	}
	c := EncodeRLE(vals)
	if c.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(vals))
	}

	seqs := map[string][]int{
		"ascending": nil,
		"strided":   nil,
		"random":    nil,
		"backward":  nil,
	}
	for i := 0; i < len(vals); i++ {
		seqs["ascending"] = append(seqs["ascending"], i)
	}
	for i := 0; i < len(vals); i += 97 { // crosses many runs per jump
		seqs["strided"] = append(seqs["strided"], i)
	}
	for i := 0; i < 5000; i++ {
		seqs["random"] = append(seqs["random"], rng.Intn(len(vals)))
	}
	for i := len(vals) - 1; i >= 0; i -= 3 {
		seqs["backward"] = append(seqs["backward"], i)
	}

	for name, seq := range seqs {
		cur := c.Cursor()
		for _, p := range seq {
			if got, want := cur.At(p), vals[p]; got != want {
				t.Fatalf("%s: At(%d) = %d, want %d", name, p, got, want)
			}
			if got, want := cur.Run(), c.run(p); got != want {
				t.Fatalf("%s: Run() after At(%d) = %d, want %d", name, p, got, want)
			}
		}
	}
}
