package storage

import (
	"fmt"
	"math"
	"sync"

	"dex/internal/fault"
)

// fpZoneBuild injects faults into the zone-map build path: it is hit once
// per (column, morsel-size) build, the moment a scan first asks for a zone
// map. An error here fails the requesting query but must leave the table
// cache consistent (the next query simply retries the build).
var fpZoneBuild = fault.Register("storage/zonemap-build")

// ZoneMap is a per-morsel min/max summary of a numeric column — the
// classic scan-skipping small materialized aggregate. Morsel m covers rows
// [m*morsel, min((m+1)*morsel, n)); a range scan skips the whole morsel
// when the predicate interval cannot intersect [min, max]. Zone maps are
// built lazily on first use (see Table.ZoneMap) and are immutable once
// built, so concurrent scans share one map with no locking.
type ZoneMap struct {
	morsel int
	n      int  // column length at build time (staleness check)
	kind   Type // TInt or TFloat
	imin   []int64
	imax   []int64
	fmin   []float64
	fmax   []float64
}

// Morsel returns the morsel size the map was built for.
func (z *ZoneMap) Morsel() int { return z.morsel }

// Rows returns the column length the map summarizes.
func (z *ZoneMap) Rows() int { return z.n }

// Morsels returns the number of summarized morsels.
func (z *ZoneMap) Morsels() int {
	if z.kind == TInt {
		return len(z.imin)
	}
	return len(z.fmin)
}

// PruneInt reports whether morsel m can be skipped for a closed integer
// predicate interval [lo, hi]: true when no value in the morsel can fall
// inside it. Only valid on a TInt zone map.
func (z *ZoneMap) PruneInt(m int, lo, hi int64) bool {
	if m < 0 || m >= len(z.imin) {
		return false
	}
	return z.imin[m] > hi || z.imax[m] < lo
}

// PruneFloat reports whether morsel m can be skipped for a closed float
// predicate interval [lo, hi]. Only valid on a TFloat zone map. A morsel
// holding only NaN (the engine's NULL) has min=+Inf, max=-Inf and is
// pruned by every interval — correct, since NaN matches no comparison.
func (z *ZoneMap) PruneFloat(m int, lo, hi float64) bool {
	if m < 0 || m >= len(z.fmin) {
		return false
	}
	// min > max is the all-NaN sentinel; test it directly so the morsel is
	// pruned even against an unbounded interval (where +Inf > hi fails).
	return z.fmin[m] > z.fmax[m] || z.fmin[m] > hi || z.fmax[m] < lo
}

// Kind returns the column type the map summarizes (TInt or TFloat).
func (z *ZoneMap) Kind() Type { return z.kind }

// BuildZoneMap computes the zone map of a numeric column at the given
// morsel size. String columns (and empty columns, and non-positive morsel
// sizes) yield (nil, nil): no map, no error — the caller just scans.
func BuildZoneMap(c Column, morsel int) (*ZoneMap, error) {
	n := c.Len()
	if n == 0 || morsel <= 0 {
		return nil, nil
	}
	if err := fpZoneBuild.Hit(); err != nil {
		return nil, err
	}
	chunks := Chunks(n, morsel)
	switch cc := c.(type) {
	case *IntColumn:
		z := &ZoneMap{morsel: morsel, n: n, kind: TInt,
			imin: make([]int64, len(chunks)), imax: make([]int64, len(chunks))}
		for m, r := range chunks {
			mn, mx := cc.V[r.Lo], cc.V[r.Lo]
			for _, v := range cc.V[r.Lo+1 : r.Hi] {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			z.imin[m], z.imax[m] = mn, mx
		}
		return z, nil
	case *FloatColumn:
		z := &ZoneMap{morsel: morsel, n: n, kind: TFloat,
			fmin: make([]float64, len(chunks)), fmax: make([]float64, len(chunks))}
		for m, r := range chunks {
			mn, mx := math.Inf(1), math.Inf(-1)
			for _, v := range cc.V[r.Lo:r.Hi] {
				if math.IsNaN(v) {
					continue // NULL: matches nothing, bounds nothing
				}
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			z.fmin[m], z.fmax[m] = mn, mx
		}
		return z, nil
	case *RLEIntColumn:
		// Run-length columns summarize per run, not per row: each morsel's
		// bounds fold over the runs overlapping it, so the build cost is
		// O(runs + morsels) rather than O(rows).
		z := &ZoneMap{morsel: morsel, n: n, kind: TInt,
			imin: make([]int64, len(chunks)), imax: make([]int64, len(chunks))}
		for m, r := range chunks {
			first := true
			var mn, mx int64
			cc.ForEachRun(r.Lo, r.Hi, func(v int64, _, _ int) {
				if first {
					mn, mx, first = v, v, false
					return
				}
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			})
			z.imin[m], z.imax[m] = mn, mx
		}
		return z, nil
	default:
		return nil, nil
	}
}

// zoneCache is the lazily-populated per-table zone-map cache. It lives in
// its own struct so Table literals elsewhere in the package need not name
// it, and the zero value is ready to use.
type zoneCache struct {
	mu   sync.Mutex
	maps map[string]*ZoneMap
}

// ZoneMap returns the (lazily built, cached) zone map of the named column
// at the given morsel size, or (nil, nil) when the column type has no zone
// map (strings). A cached map built for a different column length —
// the table grew via AppendRow — is discarded and rebuilt, so a stale map
// can never mis-prune. Concurrent callers for the same key share one
// build: the cache mutex is held across it.
func (t *Table) ZoneMap(col string, morsel int) (*ZoneMap, error) {
	c, err := t.ColumnByName(col)
	if err != nil {
		return nil, err
	}
	if c.Type() == TString || c.Len() == 0 || morsel <= 0 {
		return nil, nil
	}
	key := fmt.Sprintf("%s\x00%d", col, morsel)
	t.zones.mu.Lock()
	defer t.zones.mu.Unlock()
	if z, ok := t.zones.maps[key]; ok && z.n == c.Len() {
		return z, nil
	}
	z, err := BuildZoneMap(c, morsel)
	if err != nil || z == nil {
		return nil, err
	}
	if t.zones.maps == nil {
		t.zones.maps = map[string]*ZoneMap{}
	}
	t.zones.maps[key] = z
	return z, nil
}
