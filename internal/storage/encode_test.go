package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dex/internal/fault"
)

// randStrings draws n strings from a domain of card distinct labels.
func randStrings(rng *rand.Rand, n, card int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("v%03d", rng.Intn(card))
	}
	return out
}

// randRunInts draws n int64s as value-clustered runs (geometric run lengths).
func randRunInts(rng *rand.Rand, n int, domain int64, meanRun int) []int64 {
	out := make([]int64, 0, n)
	for len(out) < n {
		v := rng.Int63n(domain)
		runLen := 1
		for rng.Intn(meanRun) != 0 {
			runLen++
		}
		for j := 0; j < runLen && len(out) < n; j++ {
			out = append(out, v)
		}
	}
	return out
}

// requireColsEqual compares two columns value for value.
func requireColsEqual(t *testing.T, label string, a, b Column) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: len %d vs %d", label, a.Len(), b.Len())
	}
	if a.Type() != b.Type() {
		t.Fatalf("%s: type %v vs %v", label, a.Type(), b.Type())
	}
	for i := 0; i < a.Len(); i++ {
		if av, bv := a.Value(i), b.Value(i); av != bv {
			t.Fatalf("%s: row %d: %v vs %v", label, i, av, bv)
		}
	}
}

// TestDictRoundTripProperty: encode→decode equals the original for seeded
// random string columns, and every accessor agrees with positional access.
func TestDictRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 50; iter++ {
		n := []int{0, 1, 2, 17, 100, 1000}[rng.Intn(6)]
		card := 1 + rng.Intn(12)
		v := randStrings(rng, n, card)
		dc := EncodeDict(v)
		plain := &StringColumn{V: v}
		requireColsEqual(t, fmt.Sprintf("iter=%d", iter), plain, dc)
		requireColsEqual(t, fmt.Sprintf("iter=%d decode", iter), plain, dc.Decode())
		if dc.Card() > card {
			t.Fatalf("iter=%d: dictionary card %d exceeds domain %d", iter, dc.Card(), card)
		}
		// The dictionary is sorted, so codes order exactly as values do.
		for i := 1; i < dc.Card(); i++ {
			if dc.Dict()[i-1] >= dc.Dict()[i] {
				t.Fatalf("iter=%d: dictionary not sorted at %d", iter, i)
			}
		}
		// Gather/Slice round-trip through the shared dictionary.
		if n > 2 {
			sel := []int{n - 1, 0, n / 2}
			requireColsEqual(t, "gather", plain.Gather(sel), dc.Gather(sel))
			requireColsEqual(t, "slice", plain.Slice(1, n-1), dc.Slice(1, n-1))
		}
	}
}

// TestRLERoundTripProperty: encode→decode equals the original for seeded
// clustered and adversarial (alternating, constant) int columns.
func TestRLERoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for iter := 0; iter < 50; iter++ {
		var v []int64
		switch iter % 4 {
		case 0:
			v = randRunInts(rng, rng.Intn(1200), 50, 6)
		case 1: // alternating worst case: one run per row
			v = make([]int64, rng.Intn(100))
			for i := range v {
				v[i] = int64(i % 2)
			}
		case 2: // constant: a single run
			v = make([]int64, rng.Intn(100))
		default: // sorted
			v = randRunInts(rng, rng.Intn(1200), 20, 4)
			for i := 1; i < len(v); i++ {
				if v[i] < v[i-1] {
					v[i] = v[i-1]
				}
			}
		}
		rc := EncodeRLE(v)
		plain := &IntColumn{V: v}
		requireColsEqual(t, fmt.Sprintf("iter=%d", iter), plain, rc)
		requireColsEqual(t, fmt.Sprintf("iter=%d decode", iter), plain, rc.Decode())
		if n := len(v); n > 2 {
			sel := []int{n - 1, 0, n / 2, n / 2}
			requireColsEqual(t, "gather", plain.Gather(sel), rc.Gather(sel))
			requireColsEqual(t, "slice", plain.Slice(1, n-1), rc.Slice(1, n-1))
		}
		// Runs are maximal: adjacent run values always differ.
		vals := rc.RunValues()
		for i := 1; i < len(vals); i++ {
			if vals[i] == vals[i-1] {
				t.Fatalf("iter=%d: runs %d and %d not maximal", iter, i-1, i)
			}
		}
	}
}

// TestEncodedAppend pins the append semantics: dictionary growth for new
// strings, run extension vs new runs for ints.
func TestEncodedAppend(t *testing.T) {
	dc := EncodeDict([]string{"b", "a", "b"})
	for _, s := range []string{"a", "zz", "b"} {
		if err := dc.Append(String_(s)); err != nil {
			t.Fatal(err)
		}
	}
	requireColsEqual(t, "dict append", &StringColumn{V: []string{"b", "a", "b", "a", "zz", "b"}}, dc)
	if err := dc.Append(Int(1)); err == nil {
		t.Fatal("appending INT to dict column should fail")
	}

	rc := EncodeRLE([]int64{5, 5, 7})
	for _, v := range []int64{7, 7, 5} {
		if err := rc.Append(Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	requireColsEqual(t, "rle append", &IntColumn{V: []int64{5, 5, 7, 7, 7, 5}}, rc)
	if rc.Runs() != 3 {
		t.Fatalf("got %d runs, want 3", rc.Runs())
	}
	if err := rc.Append(Float(1)); err == nil {
		t.Fatal("appending FLOAT to RLE column should fail")
	}
}

// TestEncodeTableHeuristics: low-cardinality strings and clustered ints
// encode; high-cardinality and unclustered columns stay plain; floats are
// always plain.
func TestEncodeTableHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 2000
	lowS := randStrings(rng, n, 8)
	highS := make([]string, n)
	for i := range highS {
		highS[i] = fmt.Sprintf("u%06d", i)
	}
	runI := randRunInts(rng, n, 30, 8)
	randI := make([]int64, n)
	for i := range randI {
		randI[i] = rng.Int63()
	}
	fs := make([]float64, n)
	tab, err := FromColumns("t", Schema{
		{Name: "low", Type: TString}, {Name: "high", Type: TString},
		{Name: "run", Type: TInt}, {Name: "rnd", Type: TInt},
		{Name: "f", Type: TFloat},
	}, []Column{
		&StringColumn{V: lowS}, &StringColumn{V: highS},
		&IntColumn{V: runI}, &IntColumn{V: randI},
		&FloatColumn{V: fs},
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, st, err := EncodeTable(tab, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Dict != 1 || st.RLE != 1 || st.Plain != 3 {
		t.Fatalf("stats %+v, want 1 dict / 1 rle / 3 plain", st)
	}
	if _, ok := mustCol(t, enc, "low").(*DictColumn); !ok {
		t.Fatalf("low should be dictionary-coded, got %T", mustCol(t, enc, "low"))
	}
	if _, ok := mustCol(t, enc, "high").(*StringColumn); !ok {
		t.Fatalf("high should stay plain, got %T", mustCol(t, enc, "high"))
	}
	if _, ok := mustCol(t, enc, "run").(*RLEIntColumn); !ok {
		t.Fatalf("run should be RLE-coded, got %T", mustCol(t, enc, "run"))
	}
	if _, ok := mustCol(t, enc, "rnd").(*IntColumn); !ok {
		t.Fatalf("rnd should stay plain, got %T", mustCol(t, enc, "rnd"))
	}
	// Row identity is preserved across the whole table.
	for _, probe := range []int{0, 1, n / 3, n - 1} {
		for c := 0; c < tab.NumCols(); c++ {
			if a, b := tab.Column(c).Value(probe), enc.Column(c).Value(probe); a != b {
				t.Fatalf("row %d col %d: %v vs %v", probe, c, a, b)
			}
		}
	}
}

func mustCol(t *testing.T, tab *Table, name string) Column {
	t.Helper()
	c, err := tab.ColumnByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestZoneMapOverRLE: zone maps built from the run representation must
// report exactly the bounds of the decoded rows, morsel by morsel.
func TestZoneMapOverRLE(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 25; iter++ {
		v := randRunInts(rng, 1+rng.Intn(700), 40, 5)
		rc := EncodeRLE(v)
		for _, morsel := range []int{1, 7, 64, 1024} {
			ze, err := BuildZoneMap(rc, morsel)
			if err != nil {
				t.Fatal(err)
			}
			zp, err := BuildZoneMap(&IntColumn{V: v}, morsel)
			if err != nil {
				t.Fatal(err)
			}
			if ze.Morsels() != zp.Morsels() {
				t.Fatalf("iter=%d morsel=%d: %d vs %d morsels", iter, morsel, ze.Morsels(), zp.Morsels())
			}
			// Equal bounds <=> equal pruning decisions for every interval:
			// probe with each morsel's own bounds and one-off intervals.
			for m := 0; m < ze.Morsels(); m++ {
				for _, probe := range [][2]int64{
					{ze.imin[m], ze.imax[m]},
					{ze.imin[m] - 3, ze.imin[m] - 1},
					{ze.imax[m] + 1, ze.imax[m] + 3},
				} {
					if got, want := ze.PruneInt(m, probe[0], probe[1]), zp.PruneInt(m, probe[0], probe[1]); got != want {
						t.Fatalf("iter=%d morsel=%d m=%d probe=%v: prune %v vs %v",
							iter, morsel, m, probe, got, want)
					}
				}
				if ze.imin[m] != zp.imin[m] || ze.imax[m] != zp.imax[m] {
					t.Fatalf("iter=%d morsel=%d m=%d: bounds [%d,%d] vs [%d,%d]",
						iter, morsel, m, ze.imin[m], ze.imax[m], zp.imin[m], zp.imax[m])
				}
			}
		}
	}
}

// TestEncodeFailpoint: an armed storage/segment-encode site fails
// EncodeTable with the injected error, and disarming restores encoding.
func TestEncodeFailpoint(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	rng := rand.New(rand.NewSource(3))
	tab, err := FromColumns("t", Schema{{Name: "s", Type: TString}},
		[]Column{&StringColumn{V: randStrings(rng, 500, 4)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Enable("storage/segment-encode", "error"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := EncodeTable(tab, EncodeOptions{}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	fault.Disable("storage/segment-encode")
	enc, st, err := EncodeTable(tab, EncodeOptions{})
	if err != nil || st.Dict != 1 {
		t.Fatalf("after disarm: err=%v stats=%+v", err, st)
	}
	requireColsEqual(t, "post-disarm", tab.Column(0), enc.Column(0))
}
