// RLECursor: positional access over a run-length-coded column tuned for
// mostly-ascending access patterns. Value(i) binary-searches per call,
// which is exactly wrong for the selection-vector consumers (predicate
// refinement, typed aggregation): their positions ascend within a morsel
// and jump only at morsel boundaries, so the cursor stays O(1) inside a
// run, walks forward a few runs on short jumps, and re-seeks by binary
// search only on long or backward jumps (workers claim morsels out of
// order).
package storage

import "sort"

// cursorWalkLimit bounds the linear forward walk before the cursor gives
// up and binary-searches; short jumps (the ascending common case) stay
// cheap without making adversarial jump patterns O(runs) per access.
const cursorWalkLimit = 8

// RLECursor is a stateful positional reader over an RLEIntColumn. The zero
// value is not usable; obtain one from RLEIntColumn.Cursor. Cursors are
// cheap to copy and independent, so each worker of a parallel operator
// keeps its own. Positions passed to At must be in [0, Len()).
type RLECursor struct {
	vals []int64
	ends []int
	r    int   // current run index (-1 before first access)
	lo   int   // first row of the current run
	hi   int   // exclusive end of the current run
	v    int64 // value of the current run
}

// Cursor returns a cursor positioned before the first row.
func (c *RLEIntColumn) Cursor() RLECursor {
	return RLECursor{vals: c.vals, ends: c.ends, r: -1}
}

// At returns the value at row i: O(1) while i stays in the current run,
// O(runs crossed) for short forward jumps, O(log runs) otherwise.
func (cur *RLECursor) At(i int) int64 {
	if i < cur.lo || i >= cur.hi {
		cur.seek(i)
	}
	return cur.v
}

// Run returns the index of the run the last At resolved (-1 before the
// first access). Callers that evaluate something once per run — predicate
// verdicts, group keys — compare it across At calls to detect run changes.
func (cur *RLECursor) Run() int { return cur.r }

func (cur *RLECursor) seek(i int) {
	if i >= cur.hi && cur.r >= 0 {
		for step := 0; step < cursorWalkLimit && cur.r+1 < len(cur.ends); step++ {
			cur.r++
			cur.lo, cur.hi = cur.hi, cur.ends[cur.r]
			if i < cur.hi {
				cur.v = cur.vals[cur.r]
				return
			}
		}
	}
	cur.r = sort.SearchInts(cur.ends, i+1)
	cur.lo = startOf(cur.ends, cur.r)
	cur.hi = cur.ends[cur.r]
	cur.v = cur.vals[cur.r]
}
