package storage

import (
	"errors"
	"math"
	"testing"

	"dex/internal/fault"
)

func zmTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable("zm", Schema{
		{Name: "i", Type: TInt},
		{Name: "f", Type: TFloat},
		{Name: "s", Type: TString},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three morsels of 4 at morsel size 4: i covers [0,3], [10,13], [20,23];
	// f mirrors it scaled by 1.5, with morsel 1 all-NaN.
	for m := 0; m < 3; m++ {
		for k := 0; k < 4; k++ {
			f := float64(m*10+k) * 1.5
			if m == 1 {
				f = math.NaN()
			}
			if err := tab.AppendRow(Int(int64(m*10+k)), Float(f), String_("x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tab
}

func TestZoneMapBuildAndPrune(t *testing.T) {
	tab := zmTable(t)
	z, err := tab.ZoneMap("i", 4)
	if err != nil {
		t.Fatal(err)
	}
	if z == nil || z.Morsels() != 3 || z.Kind() != TInt {
		t.Fatalf("zone map = %+v", z)
	}
	cases := []struct {
		m      int
		lo, hi int64
		prune  bool
	}{
		{0, 0, 3, false},   // exact cover
		{0, 4, 100, true},  // entirely above morsel 0
		{1, 0, 9, true},    // entirely below morsel 1
		{1, 13, 13, false}, // touches morsel 1's max
		{2, 24, 30, true},  // above morsel 2
		{2, 23, 23, false}, // touches morsel 2's max
		{-1, 0, 0, false},  // out-of-range morsel never prunes
		{3, 0, 0, false},
	}
	for _, c := range cases {
		if got := z.PruneInt(c.m, c.lo, c.hi); got != c.prune {
			t.Errorf("PruneInt(%d, [%d,%d]) = %v, want %v", c.m, c.lo, c.hi, got, c.prune)
		}
	}
}

func TestZoneMapFloatNaNMorsel(t *testing.T) {
	tab := zmTable(t)
	z, err := tab.ZoneMap("f", 4)
	if err != nil {
		t.Fatal(err)
	}
	if z == nil || z.Kind() != TFloat {
		t.Fatalf("zone map = %+v", z)
	}
	// Morsel 1 holds only NaN: min=+Inf, max=-Inf, so every interval prunes
	// it — NaN is NULL and matches no comparison.
	if !z.PruneFloat(1, math.Inf(-1), math.Inf(1)) {
		t.Error("all-NaN morsel not pruned by (-Inf, +Inf)")
	}
	if z.PruneFloat(0, 0, 1) {
		t.Error("morsel 0 pruned by [0,1] but holds 0..4.5")
	}
	if !z.PruneFloat(2, 0, 29) {
		t.Error("morsel 2 (30..34.5) not pruned by [0,29]")
	}
}

func TestZoneMapUnsupportedAndEmpty(t *testing.T) {
	tab := zmTable(t)
	if z, err := tab.ZoneMap("s", 4); err != nil || z != nil {
		t.Errorf("string column: z=%v err=%v, want nil,nil", z, err)
	}
	if z, err := tab.ZoneMap("i", 0); err != nil || z != nil {
		t.Errorf("morsel 0: z=%v err=%v, want nil,nil", z, err)
	}
	if _, err := tab.ZoneMap("nope", 4); err == nil {
		t.Error("missing column: want error")
	}
	empty, err := NewTable("e", Schema{{Name: "i", Type: TInt}})
	if err != nil {
		t.Fatal(err)
	}
	if z, err := empty.ZoneMap("i", 4); err != nil || z != nil {
		t.Errorf("empty column: z=%v err=%v, want nil,nil", z, err)
	}
}

func TestZoneMapCacheAndStaleness(t *testing.T) {
	tab := zmTable(t)
	z1, err := tab.ZoneMap("i", 4)
	if err != nil {
		t.Fatal(err)
	}
	z2, err := tab.ZoneMap("i", 4)
	if err != nil {
		t.Fatal(err)
	}
	if z1 != z2 {
		t.Error("second lookup did not hit the cache")
	}
	// Distinct morsel sizes are distinct cache entries.
	z3, err := tab.ZoneMap("i", 6)
	if err != nil {
		t.Fatal(err)
	}
	if z3 == z1 || z3.Morsels() != 2 {
		t.Errorf("morsel-6 map = %+v", z3)
	}
	// Growing the table invalidates the cached map: a stale map that said
	// "max 23" would wrongly prune a morsel now holding 99.
	if err := tab.AppendRow(Int(99), Float(1), String_("y")); err != nil {
		t.Fatal(err)
	}
	z4, err := tab.ZoneMap("i", 4)
	if err != nil {
		t.Fatal(err)
	}
	if z4 == z1 {
		t.Fatal("stale zone map returned after AppendRow")
	}
	if z4.Rows() != 13 || z4.Morsels() != 4 {
		t.Errorf("rebuilt map = rows %d morsels %d", z4.Rows(), z4.Morsels())
	}
	if z4.PruneInt(3, 99, 99) {
		t.Error("rebuilt map prunes the morsel holding the new row")
	}
}

func TestZoneMapBuildFailpoint(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	tab := zmTable(t)
	if err := fault.Enable("storage/zonemap-build", "error(1.0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.ZoneMap("i", 4); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("armed build: err = %v, want injected", err)
	}
	// The failed build must not poison the cache: disarmed, the next
	// request builds and serves normally.
	fault.Disable("storage/zonemap-build")
	z, err := tab.ZoneMap("i", 4)
	if err != nil || z == nil {
		t.Fatalf("post-fault rebuild: z=%v err=%v", z, err)
	}
}
