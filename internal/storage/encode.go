// Compressed column encodings: dictionary coding for low-cardinality string
// columns and run-length coding for clustered integer columns. Both
// implement the Column interface, so every existing operator works on them
// unchanged through Value/Gather — the wins come from the typed fast paths
// in internal/expr (predicates evaluated once per dictionary code or per
// run, not per row) and the predicate kernels, which match on codes and
// accept or reject whole runs.
//
// Encoding is lossless and positional: Decode() reproduces the original
// column bit for bit, and row i of the encoded column is row i of the
// plain one. EncodeTable applies per-column heuristics (cardinality for
// dictionaries, average run length for RLE) so a column is only encoded
// when the representation actually compresses.
package storage

import (
	"fmt"
	"sort"

	"dex/internal/fault"
)

// fpEncode injects faults into the column-encode path: it is hit once per
// column that the heuristics select for encoding. Encoding is an
// optimization, so callers (core.Engine.Register) treat an error here as
// "keep the plain column", never as a load failure.
var fpEncode = fault.Register("storage/segment-encode")

// DictColumn is a dictionary-coded string column: a sorted dictionary of
// distinct values plus one int32 code per row. Because the dictionary is
// sorted at build time, code order equals value order until an Append
// introduces a new value; predicates are evaluated once per dictionary
// entry and matched on codes either way.
type DictColumn struct {
	dict  []string
	index map[string]int32
	codes []int32
}

// EncodeDict dictionary-codes a string slice. The dictionary is built
// sorted so equal inputs yield identical code assignments regardless of
// row order.
func EncodeDict(v []string) *DictColumn {
	index := make(map[string]int32)
	for _, s := range v {
		if _, ok := index[s]; !ok {
			index[s] = 0 // placeholder; codes assigned after the sort
		}
	}
	dict := make([]string, 0, len(index))
	for s := range index {
		dict = append(dict, s)
	}
	sort.Strings(dict)
	for i, s := range dict {
		index[s] = int32(i)
	}
	codes := make([]int32, len(v))
	for i, s := range v {
		codes[i] = index[s]
	}
	return &DictColumn{dict: dict, index: index, codes: codes}
}

// Type implements Column.
func (c *DictColumn) Type() Type { return TString }

// Len implements Column.
func (c *DictColumn) Len() int { return len(c.codes) }

// Value implements Column.
func (c *DictColumn) Value(i int) Value { return String_(c.dict[c.codes[i]]) }

// Append implements Column. A value not yet in the dictionary extends it
// (the new code sorts after every existing one, so earlier codes stay
// valid; the dictionary is merely no longer sorted).
func (c *DictColumn) Append(v Value) error {
	if v.Typ != TString {
		return fmt.Errorf("append %v to TEXT column: %w", v.Typ, ErrTypeMismatch)
	}
	code, ok := c.index[v.S]
	if !ok {
		code = int32(len(c.dict))
		c.dict = append(c.dict, v.S)
		c.index[v.S] = code
	}
	c.codes = append(c.codes, code)
	return nil
}

// Gather implements Column: codes are gathered, the dictionary is shared.
func (c *DictColumn) Gather(sel []int) Column {
	out := make([]int32, len(sel))
	for i, p := range sel {
		out[i] = c.codes[p]
	}
	return &DictColumn{dict: c.dict, index: c.index, codes: out}
}

// Slice implements Column: codes are copied, the dictionary is shared.
func (c *DictColumn) Slice(lo, hi int) Column {
	out := make([]int32, hi-lo)
	copy(out, c.codes[lo:hi])
	return &DictColumn{dict: c.dict, index: c.index, codes: out}
}

// Card returns the dictionary size (distinct values ever seen).
func (c *DictColumn) Card() int { return len(c.dict) }

// Dict returns the dictionary, code-ordered. Callers must not mutate it.
func (c *DictColumn) Dict() []string { return c.dict }

// Codes returns the per-row codes. Callers must not mutate them.
func (c *DictColumn) Codes() []int32 { return c.codes }

// Code returns the code for value s and whether s is in the dictionary.
func (c *DictColumn) Code(s string) (int32, bool) {
	code, ok := c.index[s]
	return code, ok
}

// Decode materializes the column back to a plain StringColumn.
func (c *DictColumn) Decode() *StringColumn {
	out := make([]string, len(c.codes))
	for i, code := range c.codes {
		out[i] = c.dict[code]
	}
	return &StringColumn{V: out}
}

// RLEIntColumn is a run-length-coded int64 column: maximal runs of equal
// values stored as (value, cumulative exclusive end) pairs. Row i lives in
// the first run whose end exceeds i. Sorted or value-clustered columns
// (dates, bucketed dimensions) compress dramatically; predicates are
// evaluated once per run.
type RLEIntColumn struct {
	vals []int64
	ends []int
}

// EncodeRLE run-length-codes an int64 slice.
func EncodeRLE(v []int64) *RLEIntColumn {
	c := &RLEIntColumn{}
	for i := 0; i < len(v); {
		j := i + 1
		for j < len(v) && v[j] == v[i] {
			j++
		}
		c.vals = append(c.vals, v[i])
		c.ends = append(c.ends, j)
		i = j
	}
	return c
}

// Type implements Column.
func (c *RLEIntColumn) Type() Type { return TInt }

// Len implements Column.
func (c *RLEIntColumn) Len() int {
	if len(c.ends) == 0 {
		return 0
	}
	return c.ends[len(c.ends)-1]
}

// run returns the index of the run containing row i.
func (c *RLEIntColumn) run(i int) int { return sort.SearchInts(c.ends, i+1) }

// Value implements Column (binary search per call; tight loops should use
// the run accessors or the typed fast paths in internal/expr).
func (c *RLEIntColumn) Value(i int) Value { return Int(c.vals[c.run(i)]) }

// Append implements Column: equal to the last value extends the final run,
// anything else starts a new one.
func (c *RLEIntColumn) Append(v Value) error {
	if v.Typ != TInt {
		return fmt.Errorf("append %v to INT column: %w", v.Typ, ErrTypeMismatch)
	}
	if n := len(c.vals); n > 0 && c.vals[n-1] == v.I {
		c.ends[n-1]++
		return nil
	}
	c.vals = append(c.vals, v.I)
	c.ends = append(c.ends, c.Len()+1)
	return nil
}

// Gather implements Column. Gathered positions are arbitrary, so the
// result materializes as a plain IntColumn.
func (c *RLEIntColumn) Gather(sel []int) Column {
	out := make([]int64, len(sel))
	r := 0
	for i, p := range sel {
		if r >= len(c.ends) || p < startOf(c.ends, r) || p >= c.ends[r] {
			r = c.run(p)
		}
		out[i] = c.vals[r]
	}
	return &IntColumn{V: out}
}

// startOf returns the first row of run r.
func startOf(ends []int, r int) int {
	if r == 0 {
		return 0
	}
	return ends[r-1]
}

// Slice implements Column, materializing the range as a plain IntColumn.
func (c *RLEIntColumn) Slice(lo, hi int) Column {
	out := make([]int64, 0, hi-lo)
	c.ForEachRun(lo, hi, func(v int64, rlo, rhi int) {
		for i := rlo; i < rhi; i++ {
			out = append(out, v)
		}
	})
	return &IntColumn{V: out}
}

// Runs returns the number of runs.
func (c *RLEIntColumn) Runs() int { return len(c.vals) }

// RunValues returns the per-run values. Callers must not mutate them.
func (c *RLEIntColumn) RunValues() []int64 { return c.vals }

// RunEnds returns the cumulative exclusive run ends. Callers must not
// mutate them.
func (c *RLEIntColumn) RunEnds() []int { return c.ends }

// ForEachRun calls fn once per run overlapping [lo, hi), with the
// overlapped sub-range. It is the whole-run accept/reject primitive the
// predicate paths build on.
func (c *RLEIntColumn) ForEachRun(lo, hi int, fn func(v int64, lo, hi int)) {
	if lo < 0 {
		lo = 0
	}
	if hi > c.Len() {
		hi = c.Len()
	}
	if lo >= hi {
		return
	}
	for r := c.run(lo); r < len(c.ends) && lo < hi; r++ {
		end := c.ends[r]
		if end > hi {
			end = hi
		}
		fn(c.vals[r], lo, end)
		lo = c.ends[r]
	}
}

// Decode materializes the column back to a plain IntColumn.
func (c *RLEIntColumn) Decode() *IntColumn {
	out := make([]int64, 0, c.Len())
	c.ForEachRun(0, c.Len(), func(v int64, lo, hi int) {
		for i := lo; i < hi; i++ {
			out = append(out, v)
		}
	})
	return &IntColumn{V: out}
}

// EncodeOptions tunes the per-column encoding heuristics.
type EncodeOptions struct {
	// MaxDictCard is the largest dictionary a string column may need to be
	// dictionary-coded (default 4096). Columns must also repeat: a column
	// whose values are mostly distinct stays plain.
	MaxDictCard int
	// MinAvgRun is the smallest average run length at which an int column
	// is run-length-coded (default 2: the encoded form must be no larger
	// than the plain one).
	MinAvgRun float64
}

func (o *EncodeOptions) fill() {
	if o.MaxDictCard <= 0 {
		o.MaxDictCard = 4096
	}
	if o.MinAvgRun <= 0 {
		o.MinAvgRun = 2
	}
}

// EncodeStats reports what EncodeTable did.
type EncodeStats struct {
	Dict  int // columns dictionary-coded
	RLE   int // columns run-length-coded
	Plain int // columns left as-is
}

// EncodeColumn applies the encoding heuristics to one column, returning
// the encoded column and true, or (nil, false) when the column should stay
// plain. Already-encoded columns report (nil, false).
func EncodeColumn(c Column, opt EncodeOptions) (Column, bool, error) {
	opt.fill()
	switch cc := c.(type) {
	case *StringColumn:
		n := len(cc.V)
		if n == 0 {
			return nil, false, nil
		}
		distinct := make(map[string]bool, opt.MaxDictCard+1)
		for _, s := range cc.V {
			distinct[s] = true
			if len(distinct) > opt.MaxDictCard {
				return nil, false, nil
			}
		}
		if 2*len(distinct) > n {
			return nil, false, nil // barely repeats: coding would not compress
		}
		if err := fpEncode.Hit(); err != nil {
			return nil, false, err
		}
		return EncodeDict(cc.V), true, nil
	case *IntColumn:
		n := len(cc.V)
		if n == 0 {
			return nil, false, nil
		}
		runs := 1
		for i := 1; i < n; i++ {
			if cc.V[i] != cc.V[i-1] {
				runs++
			}
		}
		if float64(n) < opt.MinAvgRun*float64(runs) {
			return nil, false, nil
		}
		if err := fpEncode.Hit(); err != nil {
			return nil, false, err
		}
		return EncodeRLE(cc.V), true, nil
	default:
		return nil, false, nil
	}
}

// EncodeTable returns a new table over the same schema with every column
// the heuristics select replaced by its encoded form; untouched columns
// are shared, not copied. Row identity and query results are unchanged —
// only the physical representation (and the predicate fast paths it
// unlocks) differ.
func EncodeTable(t *Table, opt EncodeOptions) (*Table, EncodeStats, error) {
	var st EncodeStats
	cols := make([]Column, t.NumCols())
	for i := range cols {
		c := t.Column(i)
		enc, ok, err := EncodeColumn(c, opt)
		if err != nil {
			return nil, st, fmt.Errorf("encode column %q: %w", t.Schema()[i].Name, err)
		}
		if !ok {
			cols[i] = c
			st.Plain++
			continue
		}
		cols[i] = enc
		switch enc.(type) {
		case *DictColumn:
			st.Dict++
		case *RLEIntColumn:
			st.RLE++
		}
	}
	out, err := FromColumns(t.Name(), t.Schema(), cols)
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}
