package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{Float(2.5), Int(2), 1},
		{String_("a"), String_("b"), -1},
		{String_("b"), String_("b"), 0},
		{Int(1), String_("a"), -1},
		{String_("a"), Int(1), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueStringRoundTrip(t *testing.T) {
	f := func(i int64, fl float64) bool {
		vi, err1 := ParseValue(Int(i).String(), TInt)
		vf, err2 := ParseValue(Float(fl).String(), TFloat)
		return err1 == nil && err2 == nil && vi.I == i && vf.F == fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInferType(t *testing.T) {
	cases := map[string]Type{
		"42":    TInt,
		"-7":    TInt,
		"3.14":  TFloat,
		"1e9":   TFloat,
		"hello": TString,
		"12ab":  TString,
	}
	for in, want := range cases {
		if got := InferType(in); got != want {
			t.Errorf("InferType(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestColumnAppendTypeMismatch(t *testing.T) {
	c := NewColumn(TInt)
	if err := c.Append(String_("x")); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("append string to int column: err = %v, want ErrTypeMismatch", err)
	}
	fc := NewColumn(TFloat)
	if err := fc.Append(Int(3)); err != nil {
		t.Errorf("float column should accept ints, got %v", err)
	}
	if got := fc.Value(0).F; got != 3 {
		t.Errorf("float column int coercion: got %v, want 3", got)
	}
}

func TestColumnGatherSlice(t *testing.T) {
	c := NewIntColumn([]int64{10, 20, 30, 40, 50})
	g := c.Gather([]int{4, 0, 2})
	want := []int64{50, 10, 30}
	for i, w := range want {
		if g.Value(i).I != w {
			t.Errorf("gather[%d] = %v, want %d", i, g.Value(i), w)
		}
	}
	s := c.Slice(1, 4).(*IntColumn)
	if len(s.V) != 3 || s.V[0] != 20 || s.V[2] != 40 {
		t.Errorf("slice = %v, want [20 30 40]", s.V)
	}
	s.V[0] = 999
	if c.V[1] != 20 {
		t.Error("Slice must copy, not alias")
	}
}

func mkTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("t", Schema{{"id", TInt}, {"score", TFloat}, {"tag", TString}})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		id    int64
		score float64
		tag   string
	}{
		{1, 0.5, "a"}, {2, 1.5, "b"}, {3, -2.0, "a"}, {4, 9.9, "c"},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(Int(r.id), Float(r.score), String_(r.tag)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTableBasics(t *testing.T) {
	tbl := mkTable(t)
	if tbl.NumRows() != 4 || tbl.NumCols() != 3 {
		t.Fatalf("dims = %dx%d, want 4x3", tbl.NumRows(), tbl.NumCols())
	}
	c, err := tbl.ColumnByName("score")
	if err != nil {
		t.Fatal(err)
	}
	if c.Value(3).F != 9.9 {
		t.Errorf("score[3] = %v", c.Value(3))
	}
	if _, err := tbl.ColumnByName("nope"); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("missing column err = %v", err)
	}
	if err := tbl.AppendRow(Int(1)); !errors.Is(err, ErrArity) {
		t.Errorf("arity err = %v", err)
	}
	row := tbl.Row(1)
	if row[0].I != 2 || row[2].S != "b" {
		t.Errorf("row(1) = %v", row)
	}
}

func TestTableSchemaValidate(t *testing.T) {
	_, err := NewTable("bad", Schema{{"x", TInt}, {"x", TFloat}})
	if !errors.Is(err, ErrDuplicateField) {
		t.Errorf("duplicate field err = %v", err)
	}
}

func TestTableGatherProjectSort(t *testing.T) {
	tbl := mkTable(t)
	g := tbl.Gather([]int{3, 1})
	if g.NumRows() != 2 || g.Row(0)[0].I != 4 {
		t.Errorf("gather rows = %v", g.Row(0))
	}
	p, err := tbl.Project("tag", "id")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.Schema()[0].Name != "tag" {
		t.Errorf("project schema = %v", p.Schema())
	}
	s, err := tbl.SortBy("score", false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Row(0)[0].I != 3 || s.Row(3)[0].I != 4 {
		t.Errorf("sort asc ids = %v,%v", s.Row(0)[0], s.Row(3)[0])
	}
	d, err := tbl.SortBy("score", true)
	if err != nil {
		t.Fatal(err)
	}
	if d.Row(0)[0].I != 4 {
		t.Errorf("sort desc first id = %v", d.Row(0)[0])
	}
}

func TestFromColumnsValidation(t *testing.T) {
	schema := Schema{{"a", TInt}, {"b", TInt}}
	_, err := FromColumns("x", schema, []Column{NewIntColumn([]int64{1, 2}), NewIntColumn([]int64{1})})
	if !errors.Is(err, ErrRaggedColumns) {
		t.Errorf("ragged err = %v", err)
	}
	_, err = FromColumns("x", schema, []Column{NewIntColumn([]int64{1})})
	if !errors.Is(err, ErrArity) {
		t.Errorf("arity err = %v", err)
	}
	_, err = FromColumns("x", schema, []Column{NewIntColumn([]int64{1}), NewFloatColumn([]float64{1})})
	if !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("type err = %v", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := mkTable(t)
	var buf bytes.Buffer
	if err := WriteCSV(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("t2", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("round trip rows = %d, want %d", back.NumRows(), tbl.NumRows())
	}
	for i := range tbl.Schema() {
		if back.Schema()[i].Type != tbl.Schema()[i].Type {
			t.Errorf("col %d type = %v, want %v", i, back.Schema()[i].Type, tbl.Schema()[i].Type)
		}
	}
	for r := 0; r < tbl.NumRows(); r++ {
		for c := 0; c < tbl.NumCols(); c++ {
			if !back.Column(c).Value(r).Equal(tbl.Column(c).Value(r)) {
				t.Errorf("cell (%d,%d) = %v, want %v", r, c, back.Column(c).Value(r), tbl.Column(c).Value(r))
			}
		}
	}
}

func TestReadCSVEmptyAndHeaderOnly(t *testing.T) {
	if _, err := ReadCSV("e", strings.NewReader("")); err == nil {
		t.Error("empty CSV should error")
	}
	tbl, err := ReadCSV("h", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 || tbl.NumCols() != 2 {
		t.Errorf("header-only dims = %dx%d", tbl.NumRows(), tbl.NumCols())
	}
}

func TestGatherPreservesValuesProperty(t *testing.T) {
	f := func(vals []int64, seed int64) bool {
		if len(vals) == 0 {
			return true
		}
		c := NewIntColumn(vals)
		rng := rand.New(rand.NewSource(seed))
		sel := make([]int, 20)
		for i := range sel {
			sel[i] = rng.Intn(len(vals))
		}
		g := c.Gather(sel)
		for i, p := range sel {
			if g.Value(i).I != vals[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormat(t *testing.T) {
	tbl := mkTable(t)
	s := tbl.Format(2)
	if !strings.Contains(s, "id") || !strings.Contains(s, "4 rows total") {
		t.Errorf("format output:\n%s", s)
	}
}
