package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Package-level sentinel errors.
var (
	ErrTypeMismatch   = errors.New("storage: type mismatch")
	ErrNoSuchColumn   = errors.New("storage: no such column")
	ErrArity          = errors.New("storage: wrong number of values")
	ErrRaggedColumns  = errors.New("storage: columns have different lengths")
	ErrDuplicateField = errors.New("storage: duplicate field name")
)

// Field describes one attribute of a schema.
type Field struct {
	Name string
	Type Type
}

// Schema is an ordered list of fields.
type Schema []Field

// Index returns the position of the named field, or -1.
func (s Schema) Index(name string) int {
	for i, f := range s {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the field names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, f := range s {
		out[i] = f.Name
	}
	return out
}

// Validate checks the schema for duplicate field names.
func (s Schema) Validate() error {
	seen := make(map[string]bool, len(s))
	for _, f := range s {
		if seen[f.Name] {
			return fmt.Errorf("field %q: %w", f.Name, ErrDuplicateField)
		}
		seen[f.Name] = true
	}
	return nil
}

// String renders the schema as "name TYPE, ...".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.Name + " " + f.Type.String()
	}
	return strings.Join(parts, ", ")
}

// Table is a named collection of equally long columns. The embedded zone
// cache (see zonemap.go) is lazily built per-table state; its zero value
// is ready, so the struct literals below need not mention it.
type Table struct {
	name   string
	schema Schema
	cols   []Column
	zones  zoneCache
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	cols := make([]Column, len(schema))
	for i, f := range schema {
		cols[i] = NewColumn(f.Type)
	}
	return &Table{name: name, schema: schema, cols: cols}, nil
}

// FromColumns builds a table directly from pre-populated columns.
// The columns are adopted, not copied.
func FromColumns(name string, schema Schema, cols []Column) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(schema) != len(cols) {
		return nil, fmt.Errorf("%d fields, %d columns: %w", len(schema), len(cols), ErrArity)
	}
	n := -1
	for i, c := range cols {
		if c.Type() != schema[i].Type {
			return nil, fmt.Errorf("column %q is %v, schema says %v: %w",
				schema[i].Name, c.Type(), schema[i].Type, ErrTypeMismatch)
		}
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return nil, fmt.Errorf("column %q has %d rows, expected %d: %w",
				schema[i].Name, c.Len(), n, ErrRaggedColumns)
		}
	}
	return &Table{name: name, schema: schema, cols: cols}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema. Callers must not mutate it.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Column returns the i-th column.
func (t *Table) Column(i int) Column { return t.cols[i] }

// ColumnByName returns the named column.
func (t *Table) ColumnByName(name string) (Column, error) {
	i := t.schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("%q: %w", name, ErrNoSuchColumn)
	}
	return t.cols[i], nil
}

// AppendRow adds one row. The value count and types must match the schema.
func (t *Table) AppendRow(vals ...Value) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("%d values for %d columns: %w", len(vals), len(t.cols), ErrArity)
	}
	for i, v := range vals {
		if err := t.cols[i].Append(v); err != nil {
			return fmt.Errorf("column %q: %w", t.schema[i].Name, err)
		}
	}
	return nil
}

// Row returns the values of row i (boxed).
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for j, c := range t.cols {
		out[j] = c.Value(i)
	}
	return out
}

// Gather returns a new table holding the rows at the given positions,
// in the given order.
func (t *Table) Gather(sel []int) *Table {
	cols := make([]Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.Gather(sel)
	}
	return &Table{name: t.name, schema: t.schema, cols: cols}
}

// Project returns a new table with only the named columns, sharing storage.
func (t *Table) Project(names ...string) (*Table, error) {
	schema := make(Schema, 0, len(names))
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i := t.schema.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("%q: %w", n, ErrNoSuchColumn)
		}
		schema = append(schema, t.schema[i])
		cols = append(cols, t.cols[i])
	}
	return &Table{name: t.name, schema: schema, cols: cols}, nil
}

// SortBy returns a new table sorted by the named column (ascending unless
// desc). The sort is stable so secondary order is preserved.
func (t *Table) SortBy(name string, desc bool) (*Table, error) {
	c, err := t.ColumnByName(name)
	if err != nil {
		return nil, err
	}
	sel := make([]int, t.NumRows())
	for i := range sel {
		sel[i] = i
	}
	sort.SliceStable(sel, func(a, b int) bool {
		cmp := c.Value(sel[a]).Compare(c.Value(sel[b]))
		if desc {
			return cmp > 0
		}
		return cmp < 0
	})
	return t.Gather(sel), nil
}

// Format renders up to maxRows rows as an aligned text table for terminals.
func (t *Table) Format(maxRows int) string {
	var b strings.Builder
	widths := make([]int, len(t.schema))
	for i, f := range t.schema {
		widths[i] = len(f.Name)
	}
	n := t.NumRows()
	shown := n
	if maxRows > 0 && shown > maxRows {
		shown = maxRows
	}
	rows := make([][]string, shown)
	for r := 0; r < shown; r++ {
		rows[r] = make([]string, len(t.cols))
		for c := range t.cols {
			s := t.cols[c].Value(r).String()
			rows[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	for i, f := range t.schema {
		fmt.Fprintf(&b, "%-*s  ", widths[i], f.Name)
	}
	b.WriteByte('\n')
	for i := range t.schema {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, row := range rows {
		for c, s := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[c], s)
		}
		b.WriteByte('\n')
	}
	if shown < n {
		fmt.Fprintf(&b, "... (%d rows total)\n", n)
	}
	return b.String()
}
