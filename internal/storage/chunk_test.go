package storage

import "testing"

func TestChunksTile(t *testing.T) {
	cases := []struct {
		n, size, want int
	}{
		{0, 10, 0}, {-3, 10, 0}, {5, 0, 1}, {5, -1, 1}, {5, 10, 1},
		{10, 10, 1}, {11, 10, 2}, {100, 10, 10}, {101, 10, 11},
	}
	for _, tc := range cases {
		got := Chunks(tc.n, tc.size)
		if len(got) != tc.want {
			t.Errorf("Chunks(%d,%d): %d chunks, want %d", tc.n, tc.size, len(got), tc.want)
			continue
		}
		if NumChunks(tc.n, tc.size) != tc.want {
			t.Errorf("NumChunks(%d,%d) = %d, want %d", tc.n, tc.size, NumChunks(tc.n, tc.size), tc.want)
		}
		// Ranges must tile [0, n) in order.
		next := 0
		for _, r := range got {
			if r.Lo != next || r.Hi <= r.Lo {
				t.Fatalf("Chunks(%d,%d): bad range %+v at offset %d", tc.n, tc.size, r, next)
			}
			if r.Len() != r.Hi-r.Lo {
				t.Fatalf("Range.Len() = %d, want %d", r.Len(), r.Hi-r.Lo)
			}
			next = r.Hi
		}
		if tc.want > 0 && next != tc.n {
			t.Errorf("Chunks(%d,%d): tiles end at %d", tc.n, tc.size, next)
		}
	}
}
