package storage

import "fmt"

// Column is a dense, typed array of values. Implementations are IntColumn,
// FloatColumn and StringColumn. Positions are 0-based row identifiers.
type Column interface {
	// Type returns the physical type of the column.
	Type() Type
	// Len returns the number of values stored.
	Len() int
	// Value returns the value at position i (boxed; use the concrete types
	// for tight loops).
	Value(i int) Value
	// Append adds a value; it must match the column type.
	Append(v Value) error
	// Gather returns a new column holding the values at the given positions.
	Gather(sel []int) Column
	// Slice returns a new column holding positions [lo, hi).
	Slice(lo, hi int) Column
}

// NewColumn returns an empty column of the given type.
func NewColumn(t Type) Column {
	switch t {
	case TInt:
		return &IntColumn{}
	case TFloat:
		return &FloatColumn{}
	case TString:
		return &StringColumn{}
	default:
		panic(fmt.Sprintf("storage: unknown column type %v", t))
	}
}

// IntColumn stores 64-bit integers.
type IntColumn struct{ V []int64 }

// NewIntColumn wraps an int64 slice as a column without copying.
func NewIntColumn(v []int64) *IntColumn { return &IntColumn{V: v} }

// Type implements Column.
func (c *IntColumn) Type() Type { return TInt }

// Len implements Column.
func (c *IntColumn) Len() int { return len(c.V) }

// Value implements Column.
func (c *IntColumn) Value(i int) Value { return Int(c.V[i]) }

// Append implements Column.
func (c *IntColumn) Append(v Value) error {
	if v.Typ != TInt {
		return fmt.Errorf("append %v to INT column: %w", v.Typ, ErrTypeMismatch)
	}
	c.V = append(c.V, v.I)
	return nil
}

// Gather implements Column.
func (c *IntColumn) Gather(sel []int) Column {
	out := make([]int64, len(sel))
	for i, p := range sel {
		out[i] = c.V[p]
	}
	return &IntColumn{V: out}
}

// Slice implements Column.
func (c *IntColumn) Slice(lo, hi int) Column {
	out := make([]int64, hi-lo)
	copy(out, c.V[lo:hi])
	return &IntColumn{V: out}
}

// FloatColumn stores float64 values.
type FloatColumn struct{ V []float64 }

// NewFloatColumn wraps a float64 slice as a column without copying.
func NewFloatColumn(v []float64) *FloatColumn { return &FloatColumn{V: v} }

// Type implements Column.
func (c *FloatColumn) Type() Type { return TFloat }

// Len implements Column.
func (c *FloatColumn) Len() int { return len(c.V) }

// Value implements Column.
func (c *FloatColumn) Value(i int) Value { return Float(c.V[i]) }

// Append implements Column.
func (c *FloatColumn) Append(v Value) error {
	if !v.IsNumeric() {
		return fmt.Errorf("append %v to FLOAT column: %w", v.Typ, ErrTypeMismatch)
	}
	c.V = append(c.V, v.AsFloat())
	return nil
}

// Gather implements Column.
func (c *FloatColumn) Gather(sel []int) Column {
	out := make([]float64, len(sel))
	for i, p := range sel {
		out[i] = c.V[p]
	}
	return &FloatColumn{V: out}
}

// Slice implements Column.
func (c *FloatColumn) Slice(lo, hi int) Column {
	out := make([]float64, hi-lo)
	copy(out, c.V[lo:hi])
	return &FloatColumn{V: out}
}

// StringColumn stores strings.
type StringColumn struct{ V []string }

// NewStringColumn wraps a string slice as a column without copying.
func NewStringColumn(v []string) *StringColumn { return &StringColumn{V: v} }

// Type implements Column.
func (c *StringColumn) Type() Type { return TString }

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.V) }

// Value implements Column.
func (c *StringColumn) Value(i int) Value { return String_(c.V[i]) }

// Append implements Column.
func (c *StringColumn) Append(v Value) error {
	if v.Typ != TString {
		return fmt.Errorf("append %v to TEXT column: %w", v.Typ, ErrTypeMismatch)
	}
	c.V = append(c.V, v.S)
	return nil
}

// Gather implements Column.
func (c *StringColumn) Gather(sel []int) Column {
	out := make([]string, len(sel))
	for i, p := range sel {
		out[i] = c.V[p]
	}
	return &StringColumn{V: out}
}

// Slice implements Column.
func (c *StringColumn) Slice(lo, hi int) Column {
	out := make([]string, hi-lo)
	copy(out, c.V[lo:hi])
	return &StringColumn{V: out}
}

// Floats extracts a column's values as float64s, converting integers.
// String columns return nil.
func Floats(c Column) []float64 {
	switch cc := c.(type) {
	case *FloatColumn:
		out := make([]float64, len(cc.V))
		copy(out, cc.V)
		return out
	case *IntColumn:
		out := make([]float64, len(cc.V))
		for i, v := range cc.V {
			out[i] = float64(v)
		}
		return out
	case *RLEIntColumn:
		out := make([]float64, 0, cc.Len())
		cc.ForEachRun(0, cc.Len(), func(v int64, lo, hi int) {
			f := float64(v)
			for i := lo; i < hi; i++ {
				out = append(out, f)
			}
		})
		return out
	default:
		return nil
	}
}
