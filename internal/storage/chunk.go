package storage

// Range is a half-open interval of row positions [Lo, Hi) — the unit of
// work ("morsel") the parallel operators hand to worker goroutines.
type Range struct {
	Lo, Hi int
}

// Len returns the number of rows covered by the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Chunks splits [0, n) into contiguous ranges of at most size rows each.
// A non-positive size yields a single range covering everything; n <= 0
// yields nil. The ranges tile [0, n) in ascending order, so results
// computed per chunk can be concatenated back into row order.
func Chunks(n, size int) []Range {
	if n <= 0 {
		return nil
	}
	if size <= 0 || size >= n {
		return []Range{{0, n}}
	}
	out := make([]Range, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Range{lo, hi})
	}
	return out
}

// NumChunks returns len(Chunks(n, size)) without building the slice.
func NumChunks(n, size int) int {
	if n <= 0 {
		return 0
	}
	if size <= 0 || size >= n {
		return 1
	}
	return (n + size - 1) / size
}
