package expr

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dex/internal/storage"
)

// kernelTable builds a table exercising every leaf kind: plain int, plain
// float (NaN-polluted), dict-coded string, RLE-coded int, plain string.
func kernelTable(t *testing.T, rng *rand.Rand, n int) *storage.Table {
	t.Helper()
	ki := make([]int64, n)
	xf := make([]float64, n)
	ss := make([]string, n)
	ri := make([]int64, 0, n)
	ps := make([]string, n)
	labels := []string{"ash", "birch", "cedar", "oak"}
	for i := 0; i < n; i++ {
		ki[i] = rng.Int63n(1000) - 500
		xf[i] = rng.Float64() * 100
		if rng.Intn(12) == 0 {
			xf[i] = math.NaN()
		}
		ss[i] = labels[rng.Intn(len(labels))]
		ps[i] = fmt.Sprintf("p%04d", rng.Intn(40))
	}
	for len(ri) < n {
		v := rng.Int63n(20)
		for j := 1 + rng.Intn(6); j > 0 && len(ri) < n; j-- {
			ri = append(ri, v)
		}
	}
	tab, err := storage.FromColumns("t", storage.Schema{
		{Name: "k", Type: storage.TInt},
		{Name: "x", Type: storage.TFloat},
		{Name: "s", Type: storage.TString},
		{Name: "r", Type: storage.TInt},
		{Name: "p", Type: storage.TString},
	}, []storage.Column{
		&storage.IntColumn{V: ki},
		&storage.FloatColumn{V: xf},
		storage.EncodeDict(ss),
		storage.EncodeRLE(ri),
		&storage.StringColumn{V: ps},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

var kernelOps = []Op{EQ, NE, LT, LE, GT, GE}

// requireKernelParity compiles p against tab and checks Run against the
// generic FilterRange oracle over several sub-ranges.
func requireKernelParity(t *testing.T, tab *storage.Table, p *Pred) {
	t.Helper()
	k, reason := CompileKernel(tab, p)
	if reason != "" {
		t.Fatalf("%s: unexpected fallback: %s", p, reason)
	}
	n := tab.NumRows()
	for _, r := range [][2]int{{0, n}, {0, 0}, {1, n - 1}, {n / 3, 2 * n / 3}, {n - 1, n + 5}} {
		want, err := FilterRange(tab, p, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		got := k.Run(r[0], r[1], nil)
		if !sameSel(got, want) {
			t.Fatalf("%s over [%d,%d): kernel %v != oracle %v", p, r[0], r[1], got, want)
		}
	}
}

func sameSel(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKernelSingleLeafParity covers every specializable (column, constant
// type, op) cell against the generic oracle.
func TestKernelSingleLeafParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := kernelTable(t, rng, 500)
	consts := map[string][]storage.Value{
		"k": {storage.Int(0), storage.Int(-500), storage.Int(499), storage.Float(0.5), storage.Float(math.NaN())},
		"x": {storage.Float(50), storage.Int(50), storage.Float(math.NaN()), storage.Float(math.Inf(1))},
		"s": {storage.String_("cedar"), storage.String_("aaa"), storage.Int(3), storage.Float(1.5)},
		"r": {storage.Int(10), storage.Int(-1), storage.Float(9.5), storage.String_("z")},
	}
	for col, vals := range consts {
		for _, v := range vals {
			for _, op := range kernelOps {
				requireKernelParity(t, tab, Cmp(col, op, v))
			}
		}
	}
}

// TestKernelConjunctionParity covers multi-leaf kernels, including nested
// ANDs, between-ranges, KTrue inside AND, and mixed leaf kinds (so both
// the RLE-first reordering and the refine paths run).
func TestKernelConjunctionParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := kernelTable(t, rng, 800)
	preds := []*Pred{
		Between("k", storage.Int(-100), storage.Int(100)),
		And(Cmp("k", GE, storage.Int(-200)), Cmp("x", LT, storage.Float(40)), Cmp("s", EQ, storage.String_("oak"))),
		And(Cmp("r", EQ, storage.Int(7)), Cmp("k", GT, storage.Int(0))),
		And(Cmp("k", GT, storage.Int(0)), Cmp("r", LE, storage.Int(10))), // RLE leaf moved first
		And(Cmp("r", GE, storage.Int(5)), Cmp("r", LT, storage.Int(15))), // RLE scan + RLE refine
		And(True(), Cmp("x", GE, storage.Float(10)), And(Cmp("s", NE, storage.String_("ash")), True())),
		And(),             // empty conjunction: matches everything
		Like("s", "%a%"),  // dict LIKE: per-code verdicts
		Like("s", "_ak"),  // dict LIKE with single-byte wildcard
		Like("s", "pine"), // dict LIKE matching no entry
		And(Cmp("k", GT, storage.Int(0)), Like("s", "c%")),  // dict LIKE as refine leaf
		And(Like("s", "%h"), Cmp("r", LE, storage.Int(10))), // dict LIKE behind RLE-first reorder
	}
	for _, p := range preds {
		requireKernelParity(t, tab, p)
	}
}

// TestKernelFallbacks pins the fallback matrix: every non-specializable
// shape must report a stable reason, and never a kernel.
func TestKernelFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := kernelTable(t, rng, 50)
	cases := []struct {
		p      *Pred
		reason string
	}{
		{nil, "trivial predicate"},
		{True(), "trivial predicate"},
		{Or(Cmp("k", EQ, storage.Int(1)), Cmp("k", EQ, storage.Int(2))), "disjunction"},
		{Not(Cmp("k", EQ, storage.Int(1))), "negation"},
		// LIKE on a dict column compiles now; the plain string column "p"
		// pins the remaining fallback.
		{Like("p", "%a%"), "like pattern"},
		{Cmp("p", EQ, storage.String_("p0001")), "string column"},
		{Cmp("k", EQ, storage.String_("7")), "cross-type compare"},
		{Cmp("x", EQ, storage.String_("7")), "cross-type compare"},
		{Cmp("nope", EQ, storage.Int(1)), "unknown column"},
		{And(Cmp("k", GT, storage.Int(0)), Like("p", "a%")), "like pattern"},
		{Like("nope", "a%"), "unknown column"},
	}
	for _, c := range cases {
		if k, reason := CompileKernel(tab, c.p); k != nil || reason != c.reason {
			t.Errorf("%s: got kernel=%v reason=%q, want reason=%q", c.p, k != nil, reason, c.reason)
		}
	}
}

// TestKernelRunAppends: Run appends to an existing selection without
// touching its prior contents (the pooled-buffer contract).
func TestKernelRunAppends(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tab := kernelTable(t, rng, 200)
	p := And(Cmp("k", GE, storage.Int(0)), Cmp("x", LT, storage.Float(50)))
	k, reason := CompileKernel(tab, p)
	if reason != "" {
		t.Fatal(reason)
	}
	first := k.Run(0, 100, nil)
	both := k.Run(100, 200, append([]int(nil), first...))
	if !sameSel(both[:len(first)], first) {
		t.Fatal("Run modified the existing prefix")
	}
	whole := k.Run(0, 200, nil)
	if !sameSel(both, whole) {
		t.Fatalf("append across halves %v != whole %v", both, whole)
	}
}

// TestKernelEncodedDecodedParity: the same logical data, plain vs encoded,
// must select identical rows for identical predicates.
func TestKernelEncodedDecodedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := kernelTable(t, rng, 600)
	// Decode the encoded columns back to plain for the reference table.
	cols := make([]storage.Column, tab.NumCols())
	for i := 0; i < tab.NumCols(); i++ {
		switch cc := tab.Column(i).(type) {
		case *storage.DictColumn:
			cols[i] = cc.Decode()
		case *storage.RLEIntColumn:
			cols[i] = cc.Decode()
		default:
			cols[i] = cc
		}
	}
	dec, err := storage.FromColumns(tab.Name(), tab.Schema(), cols)
	if err != nil {
		t.Fatal(err)
	}
	preds := []*Pred{
		Cmp("s", EQ, storage.String_("birch")),
		Cmp("r", LT, storage.Int(10)),
		And(Cmp("s", GE, storage.String_("birch")), Cmp("r", NE, storage.Int(3))),
		Like("s", "%ar"),
		Or(Cmp("r", EQ, storage.Int(1)), Cmp("s", EQ, storage.String_("oak"))),
		Not(Cmp("r", GE, storage.Int(10))),
	}
	for _, p := range preds {
		a, err := Filter(tab, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Filter(dec, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: encoded %v != decoded %v", p, a, b)
		}
	}
}
