package expr

import (
	"math"
	"testing"

	"dex/internal/storage"
)

// The differential kernel fuzzer: every byte string decodes to a table
// (plain and encoded variants of the same logical data) plus a predicate
// that is specializable by construction, and the kernel must agree
// row-for-row with the generic FilterRange oracle on both representations —
// which must in turn agree with each other. Value pools are stacked with
// the adversarial cases: NaN/±Inf floats, min/max int64, values straddling
// 2^53 (where int64→float64 conversion loses exactness), empty tables,
// empty and all-match selections.

// fzReader turns fuzz bytes into bounded draws; exhausted input yields
// zeros, so every prefix of a crashing input is itself a valid input.
type fzReader struct {
	b []byte
	i int
}

func (f *fzReader) next() byte {
	if f.i >= len(f.b) {
		return 0
	}
	v := f.b[f.i]
	f.i++
	return v
}

func (f *fzReader) draw(n int) int { return int(f.next()) % n }

var (
	fzInts = []int64{0, 1, -1, 42, -500, 500, math.MinInt64, math.MaxInt64,
		1 << 53, 1<<53 + 1, -(1<<53 + 1)}
	fzFloats = []float64{0, 1.5, -2.75, 100, math.NaN(), math.Inf(1),
		math.Inf(-1), float64(1 << 53), 42}
	fzLabels = []string{"", "a", "oak", "zzz"}
	// LIKE pattern pool: exact, empty, %-only, prefix/suffix/infix, single
	// byte wildcards, and patterns no label matches.
	fzPatterns = []string{"", "%", "oak", "o%", "%k", "%a%", "_", "__k", "%z%z%", "a_"}
)

// fzTables decodes one table's worth of data, returning the plain and the
// encoded representation of the same rows.
func fzTables(t *testing.T, f *fzReader) (plain, enc *storage.Table) {
	t.Helper()
	n := f.draw(256) * 2 // includes 0: the empty table
	ki := make([]int64, n)
	xf := make([]float64, n)
	ss := make([]string, n)
	ri := make([]int64, n)
	run := int64(0)
	for i := 0; i < n; i++ {
		ki[i] = fzInts[f.draw(len(fzInts))]
		xf[i] = fzFloats[f.draw(len(fzFloats))]
		ss[i] = fzLabels[f.draw(len(fzLabels))]
		if i == 0 || f.draw(4) == 0 { // value-clustered: ~4-row runs
			run = int64(f.draw(5))
		}
		ri[i] = run
	}
	schema := storage.Schema{
		{Name: "k", Type: storage.TInt},
		{Name: "x", Type: storage.TFloat},
		{Name: "s", Type: storage.TString},
		{Name: "r", Type: storage.TInt},
	}
	mk := func(cols []storage.Column) *storage.Table {
		tab, err := storage.FromColumns("t", schema, cols)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	plain = mk([]storage.Column{
		&storage.IntColumn{V: ki}, &storage.FloatColumn{V: xf},
		&storage.StringColumn{V: ss}, &storage.IntColumn{V: ri},
	})
	enc = mk([]storage.Column{
		&storage.IntColumn{V: ki}, &storage.FloatColumn{V: xf},
		storage.EncodeDict(ss), storage.EncodeRLE(ri),
	})
	return plain, enc
}

// fzPred decodes a specializable predicate: comparison leaves on the four
// columns (constants restricted per column so compilation always succeeds
// on both representations) plus LIKE leaves on the dict-coded column,
// combined with conjunctions.
func fzPred(f *fzReader, depth int) *Pred {
	kind := f.draw(4)
	if depth == 0 || kind < 2 {
		col := []string{"k", "x", "s", "r"}[f.draw(4)]
		if col == "s" && f.draw(3) == 0 {
			// LIKE specializes on the encoded table's dict column; the plain
			// table's string column falls back, which the harness tolerates.
			return Like("s", fzPatterns[f.draw(len(fzPatterns))])
		}
		op := kernelOps[f.draw(len(kernelOps))]
		var v storage.Value
		switch col {
		case "k", "x": // numeric columns: numeric constants only
			if f.draw(2) == 0 {
				v = storage.Int(fzInts[f.draw(len(fzInts))])
			} else {
				v = storage.Float(fzFloats[f.draw(len(fzFloats))])
			}
		default: // dict / RLE leaves specialize for every constant type
			switch f.draw(3) {
			case 0:
				v = storage.Int(fzInts[f.draw(len(fzInts))])
			case 1:
				v = storage.Float(fzFloats[f.draw(len(fzFloats))])
			default:
				v = storage.String_(fzLabels[f.draw(len(fzLabels))])
			}
		}
		return Cmp(col, op, v)
	}
	kids := make([]*Pred, 2+f.draw(2))
	for i := range kids {
		kids[i] = fzPred(f, depth-1)
	}
	return And(kids...)
}

func FuzzKernelVsGeneric(f *testing.F) {
	f.Add([]byte{})                        // empty table, zero-byte predicate
	f.Add([]byte{1, 0})                    // two rows of zeros
	f.Add([]byte{40, 6, 4, 2, 0, 1, 3, 5}) // mid-size mixed table
	f.Add([]byte{128, 255, 254, 253, 252, 251, 250, 7, 7, 7, 2, 0, 1, 6, 5, 4, 3})
	f.Add([]byte{16, 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4, 6, 2, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &fzReader{b: data}
		plain, enc := fzTables(t, fr)
		p := fzPred(fr, 2)
		n := plain.NumRows()
		lo := 0
		hi := n
		if fr.draw(2) == 1 && n > 0 { // sometimes a sub-range
			lo = fr.draw(n + 1)
			hi = lo + fr.draw(n+1-lo)
		}
		oracle, err := FilterRange(plain, p, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		oracleEnc, err := FilterRange(enc, p, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSel(oracle, oracleEnc) {
			t.Fatalf("%s [%d,%d): generic plain %v != generic encoded %v",
				p, lo, hi, oracle, oracleEnc)
		}
		for _, tab := range []*storage.Table{plain, enc} {
			k, reason := CompileKernel(tab, p)
			if reason != "" {
				// Plain string columns and string constants against plain int
				// columns legitimately take the generic path; the encoded
				// table specializes every generated predicate by construction.
				if tab == plain {
					continue
				}
				t.Fatalf("%s: predicate built to specialize, but fell back: %s", p, reason)
			}
			if got := k.Run(lo, hi, nil); !sameSel(got, oracle) {
				t.Fatalf("%s [%d,%d): kernel %v != oracle %v", p, lo, hi, got, oracle)
			}
		}
	})
}
