// Package expr provides scalar predicates over tables: comparisons of a
// column against a constant, combined with AND/OR/NOT. Predicates evaluate
// either row-at-a-time (Matches) or column-at-a-time (Filter), the latter
// using typed fast paths as a column store would.
package expr

import (
	"errors"
	"fmt"
	"strings"

	"dex/internal/storage"
)

// ErrUnknownColumn is returned when a predicate references a column that the
// table does not have.
var ErrUnknownColumn = errors.New("expr: unknown column")

// Op is a comparison operator.
type Op uint8

// Comparison operators.
const (
	EQ Op = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// apply evaluates "cmp(a,b) o 0" given a three-way comparison result.
func (o Op) apply(cmp int) bool {
	switch o {
	case EQ:
		return cmp == 0
	case NE:
		return cmp != 0
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case GT:
		return cmp > 0
	case GE:
		return cmp >= 0
	default:
		return false
	}
}

// Kind discriminates predicate nodes.
type Kind uint8

// Predicate node kinds.
const (
	KCmp Kind = iota
	KAnd
	KOr
	KNot
	KTrue
	KLike
)

// Pred is a predicate tree node. Leaves (KCmp) compare a column against a
// constant; interior nodes combine children. The zero value is not valid;
// use the constructors.
type Pred struct {
	Kind Kind
	Col  string
	Op   Op
	Val  storage.Value
	Kids []*Pred
}

// Cmp builds a comparison leaf: col op val.
func Cmp(col string, op Op, val storage.Value) *Pred {
	return &Pred{Kind: KCmp, Col: col, Op: op, Val: val}
}

// Like builds a SQL LIKE leaf: % matches any sequence, _ any single byte.
func Like(col, pattern string) *Pred {
	return &Pred{Kind: KLike, Col: col, Val: storage.String_(pattern)}
}

// In builds col IN (vals...): a disjunction of equalities.
func In(col string, vals ...storage.Value) *Pred {
	if len(vals) == 1 {
		return Cmp(col, EQ, vals[0])
	}
	terms := make([]*Pred, len(vals))
	for i, v := range vals {
		terms[i] = Cmp(col, EQ, v)
	}
	return Or(terms...)
}

// Between builds lo <= col < hi, the half-open range convention used by the
// cracking literature.
func Between(col string, lo, hi storage.Value) *Pred {
	return And(Cmp(col, GE, lo), Cmp(col, LT, hi))
}

// And combines predicates conjunctively.
func And(kids ...*Pred) *Pred { return &Pred{Kind: KAnd, Kids: kids} }

// Or combines predicates disjunctively.
func Or(kids ...*Pred) *Pred { return &Pred{Kind: KOr, Kids: kids} }

// Not negates a predicate.
func Not(k *Pred) *Pred { return &Pred{Kind: KNot, Kids: []*Pred{k}} }

// True matches every row.
func True() *Pred { return &Pred{Kind: KTrue} }

// String renders the predicate as SQL-ish text.
func (p *Pred) String() string {
	if p == nil {
		return "TRUE"
	}
	switch p.Kind {
	case KTrue:
		return "TRUE"
	case KCmp:
		v := p.Val.String()
		if p.Val.Typ == storage.TString {
			v = "'" + v + "'"
		}
		return fmt.Sprintf("%s %s %s", p.Col, p.Op, v)
	case KLike:
		return fmt.Sprintf("%s LIKE '%s'", p.Col, p.Val.S)
	case KNot:
		return "NOT (" + p.Kids[0].String() + ")"
	case KAnd, KOr:
		sep := " AND "
		if p.Kind == KOr {
			sep = " OR "
		}
		parts := make([]string, len(p.Kids))
		for i, k := range p.Kids {
			parts[i] = k.String()
			if k.Kind == KAnd || k.Kind == KOr {
				parts[i] = "(" + parts[i] + ")"
			}
		}
		return strings.Join(parts, sep)
	default:
		return "?"
	}
}

// Columns returns the distinct column names the predicate references.
func (p *Pred) Columns() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(*Pred)
	walk = func(q *Pred) {
		if q == nil {
			return
		}
		if (q.Kind == KCmp || q.Kind == KLike) && !seen[q.Col] {
			seen[q.Col] = true
			out = append(out, q.Col)
		}
		for _, k := range q.Kids {
			walk(k)
		}
	}
	walk(p)
	return out
}

// Validate checks that every referenced column exists in the schema.
func (p *Pred) Validate(schema storage.Schema) error {
	for _, c := range p.Columns() {
		if schema.Index(c) < 0 {
			return fmt.Errorf("%q: %w", c, ErrUnknownColumn)
		}
	}
	return nil
}

// Matches reports whether row i of t satisfies the predicate.
// Unknown columns evaluate to false.
func (p *Pred) Matches(t *storage.Table, i int) bool {
	if p == nil {
		return true
	}
	switch p.Kind {
	case KTrue:
		return true
	case KCmp:
		c, err := t.ColumnByName(p.Col)
		if err != nil {
			return false
		}
		return p.Op.apply(c.Value(i).Compare(p.Val))
	case KLike:
		c, err := t.ColumnByName(p.Col)
		if err != nil {
			return false
		}
		return likeMatch(c.Value(i).String(), p.Val.S)
	case KAnd:
		for _, k := range p.Kids {
			if !k.Matches(t, i) {
				return false
			}
		}
		return true
	case KOr:
		for _, k := range p.Kids {
			if k.Matches(t, i) {
				return true
			}
		}
		return false
	case KNot:
		return !p.Kids[0].Matches(t, i)
	default:
		return false
	}
}

// Filter returns the row positions of t that satisfy p, in ascending order.
// It evaluates column-at-a-time into a boolean vector with typed fast paths
// for comparison leaves, then collects positions.
func Filter(t *storage.Table, p *Pred) ([]int, error) {
	return FilterRange(t, p, 0, t.NumRows())
}

// FilterRange is Filter restricted to rows [lo, hi): it returns the
// positions in that range that satisfy p, in ascending order. It is the
// per-morsel unit of the parallel scan — each morsel evaluates its own
// range and the selection vectors concatenate back into row order.
func FilterRange(t *storage.Table, p *Pred, lo, hi int) ([]int, error) {
	if hi > t.NumRows() {
		hi = t.NumRows()
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return nil, nil
	}
	if p == nil || p.Kind == KTrue {
		out := make([]int, hi-lo)
		for i := range out {
			out[i] = lo + i
		}
		return out, nil
	}
	if err := p.Validate(t.Schema()); err != nil {
		return nil, err
	}
	bits, err := evalVector(t, p, lo, hi)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, (hi-lo)/4)
	for i, b := range bits {
		if b {
			out = append(out, lo+i)
		}
	}
	return out, nil
}

// Count returns how many rows of t satisfy p.
func Count(t *storage.Table, p *Pred) (int, error) {
	sel, err := Filter(t, p)
	if err != nil {
		return 0, err
	}
	return len(sel), nil
}

// evalVector evaluates p over rows [lo, hi) into a boolean vector whose
// index 0 corresponds to row lo.
func evalVector(t *storage.Table, p *Pred, lo, hi int) ([]bool, error) {
	n := hi - lo
	switch p.Kind {
	case KTrue:
		out := make([]bool, n)
		for i := range out {
			out[i] = true
		}
		return out, nil
	case KCmp:
		return evalCmp(t, p, lo, hi)
	case KLike:
		return evalLike(t, p, lo, hi)
	case KNot:
		out, err := evalVector(t, p.Kids[0], lo, hi)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = !out[i]
		}
		return out, nil
	case KAnd, KOr:
		var acc []bool
		for _, k := range p.Kids {
			v, err := evalVector(t, k, lo, hi)
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = v
				continue
			}
			if p.Kind == KAnd {
				for i := range acc {
					acc[i] = acc[i] && v[i]
				}
			} else {
				for i := range acc {
					acc[i] = acc[i] || v[i]
				}
			}
		}
		if acc == nil {
			acc = make([]bool, n)
			if p.Kind == KAnd {
				for i := range acc {
					acc[i] = true
				}
			}
		}
		return acc, nil
	default:
		return nil, fmt.Errorf("expr: bad predicate kind %d", p.Kind)
	}
}

func evalCmp(t *storage.Table, p *Pred, lo, hi int) ([]bool, error) {
	c, err := t.ColumnByName(p.Col)
	if err != nil {
		return nil, err
	}
	out := make([]bool, hi-lo)
	switch cc := c.(type) {
	case *storage.IntColumn:
		if p.Val.Typ == storage.TInt {
			v, op := p.Val.I, p.Op
			vals := cc.V[lo:hi]
			switch op {
			case LT:
				for i, x := range vals {
					out[i] = x < v
				}
			case LE:
				for i, x := range vals {
					out[i] = x <= v
				}
			case GT:
				for i, x := range vals {
					out[i] = x > v
				}
			case GE:
				for i, x := range vals {
					out[i] = x >= v
				}
			case EQ:
				for i, x := range vals {
					out[i] = x == v
				}
			case NE:
				for i, x := range vals {
					out[i] = x != v
				}
			}
			return out, nil
		}
	case *storage.FloatColumn:
		if p.Val.IsNumeric() {
			v, op := p.Val.AsFloat(), p.Op
			vals := cc.V[lo:hi]
			switch op {
			case LT:
				for i, x := range vals {
					out[i] = x < v
				}
			case LE:
				for i, x := range vals {
					out[i] = x <= v
				}
			case GT:
				for i, x := range vals {
					out[i] = x > v
				}
			case GE:
				for i, x := range vals {
					out[i] = x >= v
				}
			case EQ:
				for i, x := range vals {
					out[i] = x == v
				}
			case NE:
				for i, x := range vals {
					out[i] = x != v
				}
			}
			return out, nil
		}
	case *storage.StringColumn:
		if p.Val.Typ == storage.TString {
			v, op := p.Val.S, p.Op
			for i, x := range cc.V[lo:hi] {
				out[i] = op.apply(strings.Compare(x, v))
			}
			return out, nil
		}
	case *storage.DictColumn:
		// Evaluate the predicate once per dictionary entry, then match rows
		// on codes. Boxed Compare keeps cross-type semantics identical to the
		// plain StringColumn paths (typed fast path and generic alike).
		match := dictMatch(cc, p.Op, p.Val)
		for i, code := range cc.Codes()[lo:hi] {
			out[i] = match[code]
		}
		return out, nil
	case *storage.RLEIntColumn:
		// Evaluate once per run; accept or reject the whole overlap.
		cc.ForEachRun(lo, hi, func(x int64, rlo, rhi int) {
			if rleVerdict(p.Op, x, p.Val) {
				for i := rlo; i < rhi; i++ {
					out[i-lo] = true
				}
			}
		})
		return out, nil
	}
	// Generic slow path for cross-type comparisons.
	for i := lo; i < hi; i++ {
		out[i-lo] = p.Op.apply(c.Value(i).Compare(p.Val))
	}
	return out, nil
}

func evalLike(t *storage.Table, p *Pred, lo, hi int) ([]bool, error) {
	c, err := t.ColumnByName(p.Col)
	if err != nil {
		return nil, err
	}
	out := make([]bool, hi-lo)
	pat := p.Val.S
	if sc, ok := c.(*storage.StringColumn); ok {
		for i, s := range sc.V[lo:hi] {
			out[i] = likeMatch(s, pat)
		}
		return out, nil
	}
	if dc, ok := c.(*storage.DictColumn); ok {
		// Match the pattern once per dictionary entry, then map codes.
		dict := dc.Dict()
		match := make([]bool, len(dict))
		for code, s := range dict {
			match[code] = likeMatch(s, pat)
		}
		for i, code := range dc.Codes()[lo:hi] {
			out[i] = match[code]
		}
		return out, nil
	}
	for i := lo; i < hi; i++ {
		out[i-lo] = likeMatch(c.Value(i).String(), pat)
	}
	return out, nil
}

// likeMatch implements SQL LIKE over bytes: '%' matches any sequence,
// '_' any single byte. Iterative two-pointer algorithm with backtracking
// to the last '%'.
func likeMatch(s, pat string) bool {
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si, pi = ss, star+1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}
