package expr

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dex/internal/storage"
)

func mkTable(t *testing.T) *storage.Table {
	t.Helper()
	tbl, err := storage.NewTable("t", storage.Schema{
		{Name: "a", Type: storage.TInt},
		{Name: "b", Type: storage.TFloat},
		{Name: "s", Type: storage.TString},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		err := tbl.AppendRow(
			storage.Int(int64(i)),
			storage.Float(float64(i)*0.5),
			storage.String_(string(rune('a'+i%3))),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestCmpOps(t *testing.T) {
	tbl := mkTable(t)
	cases := []struct {
		p    *Pred
		want int
	}{
		{Cmp("a", LT, storage.Int(5)), 5},
		{Cmp("a", LE, storage.Int(5)), 6},
		{Cmp("a", GT, storage.Int(7)), 2},
		{Cmp("a", GE, storage.Int(7)), 3},
		{Cmp("a", EQ, storage.Int(3)), 1},
		{Cmp("a", NE, storage.Int(3)), 9},
		{Cmp("b", LT, storage.Float(1.0)), 2},
		{Cmp("s", EQ, storage.String_("a")), 4},
		{Cmp("s", GT, storage.String_("b")), 3},
		{Between("a", storage.Int(2), storage.Int(5)), 3},
		{True(), 10},
		{nil, 10},
	}
	for _, c := range cases {
		got, err := Count(tbl, c.p)
		if err != nil {
			t.Fatalf("%v: %v", c.p, err)
		}
		if got != c.want {
			t.Errorf("count(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestBooleanCombinators(t *testing.T) {
	tbl := mkTable(t)
	p := Or(Cmp("a", LT, storage.Int(2)), Cmp("a", GE, storage.Int(8)))
	if n, _ := Count(tbl, p); n != 4 {
		t.Errorf("or count = %d, want 4", n)
	}
	p = Not(p)
	if n, _ := Count(tbl, p); n != 6 {
		t.Errorf("not count = %d, want 6", n)
	}
	p = And(Cmp("a", GE, storage.Int(2)), Cmp("s", EQ, storage.String_("a")), Cmp("b", LT, storage.Float(4)))
	if n, _ := Count(tbl, p); n != 2 { // a in {3,6} have s="a"? a%3==0 -> s='a': a in {3,6} with b<4 => b=1.5,3.0
		t.Errorf("and count = %d, want 2", n)
	}
}

func TestCrossTypeCompare(t *testing.T) {
	tbl := mkTable(t)
	// Compare INT column against FLOAT constant: generic numeric path.
	if n, _ := Count(tbl, Cmp("a", LT, storage.Float(4.5))); n != 5 {
		t.Error("int col vs float const")
	}
	if n, _ := Count(tbl, Cmp("b", GE, storage.Int(2))); n != 6 {
		t.Error("float col vs int const")
	}
}

func TestValidate(t *testing.T) {
	tbl := mkTable(t)
	p := Cmp("nope", EQ, storage.Int(1))
	if err := p.Validate(tbl.Schema()); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("validate err = %v", err)
	}
	if _, err := Filter(tbl, p); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("filter err = %v", err)
	}
	if p.Matches(tbl, 0) {
		t.Error("Matches on unknown column should be false")
	}
}

func TestStringRendering(t *testing.T) {
	p := And(Cmp("a", GE, storage.Int(1)), Or(Cmp("s", EQ, storage.String_("x")), Cmp("b", LT, storage.Float(2))))
	got := p.String()
	want := "a >= 1 AND (s = 'x' OR b < 2)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if True().String() != "TRUE" {
		t.Error("TRUE rendering")
	}
	if Not(Cmp("a", NE, storage.Int(0))).String() != "NOT (a <> 0)" {
		t.Error("NOT rendering")
	}
}

func TestColumns(t *testing.T) {
	p := And(Cmp("a", GE, storage.Int(1)), Cmp("b", LT, storage.Float(2)), Cmp("a", LT, storage.Int(9)))
	cols := p.Columns()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Errorf("Columns() = %v", cols)
	}
}

// TestFilterMatchesAgree checks column-at-a-time Filter against the
// row-at-a-time Matches oracle on random predicates and data.
func TestFilterMatchesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(100)
		av := make([]int64, n)
		bv := make([]float64, n)
		for i := range av {
			av[i] = int64(rng.Intn(40) - 20)
			bv[i] = rng.NormFloat64() * 10
		}
		tbl, err := storage.FromColumns("r", storage.Schema{
			{Name: "a", Type: storage.TInt}, {Name: "b", Type: storage.TFloat},
		}, []storage.Column{storage.NewIntColumn(av), storage.NewFloatColumn(bv)})
		if err != nil {
			return false
		}
		var genPred func(depth int) *Pred
		genPred = func(depth int) *Pred {
			if depth == 0 || rng.Float64() < 0.5 {
				col := "a"
				val := storage.Int(int64(rng.Intn(40) - 20))
				if rng.Intn(2) == 0 {
					col = "b"
					val = storage.Float(rng.NormFloat64() * 10)
				}
				return Cmp(col, Op(rng.Intn(6)), val)
			}
			switch rng.Intn(3) {
			case 0:
				return And(genPred(depth-1), genPred(depth-1))
			case 1:
				return Or(genPred(depth-1), genPred(depth-1))
			default:
				return Not(genPred(depth - 1))
			}
		}
		p := genPred(3)
		sel, err := Filter(tbl, p)
		if err != nil {
			return false
		}
		isSel := make(map[int]bool, len(sel))
		for _, i := range sel {
			isSel[i] = true
		}
		for i := 0; i < n; i++ {
			if p.Matches(tbl, i) != isSel[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_l_o", true},
		{"hello", "%", true},
		{"hello", "", false},
		{"hello", "hell", false},
		{"hello", "_ello_", false},
		{"abcabc", "%abc", true},
		{"abcabc", "a%c", true},
		{"", "%", true},
		{"", "_", false},
		{"a%b", "a%b", true}, // literal percent matched by wildcard semantics
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

func TestLikePredicate(t *testing.T) {
	tbl := mkTable(t)
	// s column values cycle a,b,c.
	n, err := Count(tbl, Like("s", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("LIKE 'a' count = %d", n)
	}
	if n, _ := Count(tbl, Like("s", "%")); n != 10 {
		t.Errorf("LIKE %% count = %d", n)
	}
	if got := Like("s", "a%").String(); got != "s LIKE 'a%'" {
		t.Errorf("String() = %q", got)
	}
	if cols := Like("s", "x").Columns(); len(cols) != 1 || cols[0] != "s" {
		t.Errorf("Columns() = %v", cols)
	}
	if _, err := Filter(tbl, Like("zzz", "x")); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("unknown col err = %v", err)
	}
	// Matches agrees with Filter.
	p := Like("s", "_")
	sel, _ := Filter(tbl, p)
	for _, r := range sel {
		if !p.Matches(tbl, r) {
			t.Error("Matches/Filter disagree")
		}
	}
	// LIKE over a numeric column matches its decimal rendering.
	if n, _ := Count(tbl, Like("a", "1%")); n != 1 { // values 0..9: only "1"
		t.Errorf("numeric LIKE count = %d", n)
	}
}

func TestInPredicate(t *testing.T) {
	tbl := mkTable(t)
	p := In("a", storage.Int(1), storage.Int(3), storage.Int(99))
	if n, _ := Count(tbl, p); n != 2 {
		t.Errorf("IN count = %d", n)
	}
	single := In("a", storage.Int(5))
	if single.Kind != KCmp {
		t.Error("single-value IN should collapse to equality")
	}
}
