// Predicate kernels: the hot filtered-scan loop compiled down to typed
// slice scans. CompileKernel lowers a comparison leaf — or a conjunction of
// them — onto the concrete column representations of one table, and Run
// then evaluates a row range with zero boxed Eval calls: the first leaf
// scans raw values into a selection vector, each further leaf refines that
// vector in place. LIKE lowers too when its column is dictionary-encoded:
// the pattern runs once per distinct entry and rows reduce to a code
// lookup. Predicates the compiler cannot lower (OR, NOT, LIKE on plain
// string columns, cross-type comparisons) report a fallback reason
// and the caller uses the generic FilterRange path, which stays the
// semantic oracle: for every input, Run(lo, hi, nil) must equal
// FilterRange(t, p, lo, hi). The differential fuzzer in kernel_fuzz_test.go
// enforces exactly that.
package expr

import (
	"math"
	"unsafe"

	"dex/internal/storage"
)

// kernelKind discriminates compiled leaf shapes.
type kernelKind uint8

const (
	// kI64: IntColumn vs INT constant, exact int64 comparison.
	kI64 kernelKind = iota
	// kI64AsF64: IntColumn vs FLOAT constant. The generic path boxes both
	// sides through Value.Compare (float64 conversion, three-way result), so
	// the kernel replicates that exactly — including NaN constants, where
	// every comparison collapses to cmp==0.
	kI64AsF64
	// kF64: FloatColumn vs numeric constant, raw float64 comparison
	// (NaN matches nothing except NE, as in the typed FilterRange path).
	kF64
	// kI64Range: two or more kI64 leaves on the same column fused into one
	// inclusive range iv <= x <= iv2 (bounds normalized exactly; an empty
	// intersection is iv > iv2). One load and two compares per row replace
	// a scan per leaf.
	kI64Range
	// kF64Range: fused kF64 leaves, inclusive fv <= x <= fv2. Strict bounds
	// normalize via Nextafter (exact on doubles); an unsatisfiable range
	// carries a NaN bound, which no row — NaN included — can pass, matching
	// the raw-comparison semantics of the unfused leaves.
	kF64Range
	// kDict: DictColumn vs any constant; verdict precomputed per code.
	kDict
	// kRLE: RLEIntColumn vs any constant; verdict computed once per run.
	kRLE
)

// kernelLeaf is one compiled comparison, bound to a column's raw storage.
type kernelLeaf struct {
	kind  kernelKind
	op    Op
	col   string        // source column, for range fusion
	iv    int64         // kI64 constant / kI64Range low bound
	iv2   int64         // kI64Range high bound
	fv    float64       // kI64AsF64, kF64 constant / kF64Range low bound
	fv2   float64       // kF64Range high bound
	val   storage.Value // kRLE boxed constant (non-INT)
	exact bool          // kRLE: INT constant, compare exactly
	i64   []int64       // kI64 / kI64AsF64 / kI64Range values
	f64   []float64     // kF64 / kF64Range values
	codes []int32       // kDict codes
	match []bool        // kDict per-code verdict
	rle   *storage.RLEIntColumn
	// extra holds further fused comparisons against the same RLE column:
	// the run verdict is the conjunction of (op, val) and every entry here,
	// evaluated once per run instead of once per leaf pass.
	extra []rleCond
}

// rleCond is one fused comparison of a kRLE leaf's conjunction.
type rleCond struct {
	op  Op
	val storage.Value
}

// runVerdict evaluates the leaf's full conjunction against one run value.
func (l *kernelLeaf) runVerdict(x int64) bool {
	if !rleVerdict(l.op, x, l.val) {
		return false
	}
	for _, c := range l.extra {
		if !rleVerdict(c.op, x, c.val) {
			return false
		}
	}
	return true
}

// Kernel is a compiled predicate over one table. The zero leaf count means
// "match everything" (an empty conjunction).
type Kernel struct {
	leaves []kernelLeaf
	n      int // table length at compile time
}

// Leaves returns the number of compiled comparison leaves.
func (k *Kernel) Leaves() int { return len(k.leaves) }

// CompileKernel lowers p onto t's columns. It returns (kernel, "") on
// success, or (nil, reason) when the predicate must take the generic path.
// Only comparison leaves and conjunctions of them are specializable; the
// reason string is stable and surfaces in the scan trace span.
func CompileKernel(t *storage.Table, p *Pred) (*Kernel, string) {
	if p == nil || p.Kind == KTrue {
		return nil, "trivial predicate"
	}
	var cmps []*Pred
	if reason := flattenAnd(p, &cmps); reason != "" {
		return nil, reason
	}
	k := &Kernel{leaves: make([]kernelLeaf, 0, len(cmps)), n: t.NumRows()}
	for _, c := range cmps {
		leaf, reason := compileLeaf(t, c)
		if reason != "" {
			return nil, reason
		}
		k.leaves = append(k.leaves, leaf)
	}
	k.leaves = fuseRanges(k.leaves)
	// Run-length leaves scan whole runs at a time, so when one is present it
	// should produce the candidate vector the others refine. AND commutes;
	// moving it first never changes the result.
	for i, l := range k.leaves {
		if l.kind == kRLE {
			k.leaves[0], k.leaves[i] = k.leaves[i], k.leaves[0]
			break
		}
	}
	return k, ""
}

// fuseRanges intersects same-column kI64/kF64 comparison leaves into single
// range leaves, so BETWEEN-style conjunctions scan the column once instead
// of once per bound. NE leaves are not contiguous ranges and stay unfused;
// kI64AsF64 keeps its three-way-compare semantics and stays unfused too.
// Fusion is exact: strict and equality bounds normalize to inclusive ones
// (integers by ±1 with overflow producing an empty range, floats by
// Nextafter with ±Inf/NaN producing an unsatisfiable NaN bound).
// Same-column kRLE leaves fuse by a different mechanism — the extra
// comparisons join the first leaf's per-run conjunction, so a range over a
// run-length column still makes a single pass over the runs.
func fuseRanges(leaves []kernelLeaf) []kernelLeaf {
	fusable := func(l kernelLeaf) bool {
		return (l.kind == kI64 || l.kind == kF64) && l.op != NE || l.kind == kRLE
	}
	byCol := map[string]int{} // column -> count of fusable leaves
	for _, l := range leaves {
		if fusable(l) {
			byCol[l.col]++
		}
	}
	out := leaves[:0]
	at := map[string]int{} // column -> index of its fused leaf in out
	for _, l := range leaves {
		if !fusable(l) || byCol[l.col] < 2 {
			out = append(out, l)
			continue
		}
		if i, ok := at[l.col]; ok {
			merge := &out[i]
			switch l.kind {
			case kI64:
				lo, hi := i64Bounds(l.op, l.iv)
				merge.iv = maxI64(merge.iv, lo)
				merge.iv2 = minI64(merge.iv2, hi)
			case kF64:
				lo, hi := f64Bounds(l.op, l.fv)
				// math.Max/Min propagate a NaN (unsatisfiable) bound.
				merge.fv = math.Max(merge.fv, lo)
				merge.fv2 = math.Min(merge.fv2, hi)
			case kRLE:
				merge.extra = append(merge.extra, rleCond{op: l.op, val: l.val})
			}
			continue
		}
		r := l
		switch l.kind {
		case kI64:
			r.kind = kI64Range
			r.iv, r.iv2 = i64Bounds(l.op, l.iv)
		case kF64:
			r.kind = kF64Range
			r.fv, r.fv2 = f64Bounds(l.op, l.fv)
		}
		at[l.col] = len(out)
		out = append(out, r)
	}
	return out
}

// i64Bounds rewrites one exact int64 comparison as an inclusive range.
// An unsatisfiable comparison (x > MaxInt64, x < MinInt64) returns the
// empty range lo > hi, which intersection preserves.
func i64Bounds(op Op, v int64) (lo, hi int64) {
	lo, hi = math.MinInt64, math.MaxInt64
	switch op {
	case LT:
		if v == math.MinInt64 {
			return math.MaxInt64, math.MinInt64
		}
		hi = v - 1
	case LE:
		hi = v
	case GT:
		if v == math.MaxInt64 {
			return math.MaxInt64, math.MinInt64
		}
		lo = v + 1
	case GE:
		lo = v
	case EQ:
		lo, hi = v, v
	}
	return lo, hi
}

// f64Bounds rewrites one raw float64 comparison as an inclusive range.
// Strict bounds move to the adjacent representable double (exact), and a
// comparison no value satisfies — x > +Inf, x < -Inf, any op against NaN —
// yields a NaN bound.
func f64Bounds(op Op, v float64) (lo, hi float64) {
	lo, hi = math.Inf(-1), math.Inf(1)
	switch op {
	case LT:
		hi = nextBelow(v)
	case LE:
		hi = v // v NaN: x <= NaN holds for no x, the range is already empty
	case GT:
		lo = nextAbove(v)
	case GE:
		lo = v
	case EQ:
		lo, hi = v, v
	}
	return lo, hi
}

func nextAbove(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 1) {
		return math.NaN()
	}
	return math.Nextafter(v, math.Inf(1))
}

func nextBelow(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, -1) {
		return math.NaN()
	}
	return math.Nextafter(v, math.Inf(-1))
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// flattenAnd collects the comparison leaves of a (possibly nested)
// conjunction into out, returning a fallback reason for any other shape.
func flattenAnd(p *Pred, out *[]*Pred) string {
	switch p.Kind {
	case KCmp:
		*out = append(*out, p)
		return ""
	case KTrue:
		return "" // neutral element of AND
	case KAnd:
		for _, kid := range p.Kids {
			if reason := flattenAnd(kid, out); reason != "" {
				return reason
			}
		}
		return ""
	case KOr:
		return "disjunction"
	case KNot:
		return "negation"
	case KLike:
		// Lowerable when the column turns out to be dictionary-encoded
		// (compileLeaf decides); plain string columns still fall back.
		*out = append(*out, p)
		return ""
	default:
		return "unknown predicate kind"
	}
}

// compileLeaf binds one comparison or LIKE leaf to a column's storage.
func compileLeaf(t *storage.Table, p *Pred) (kernelLeaf, string) {
	c, err := t.ColumnByName(p.Col)
	if err != nil {
		return kernelLeaf{}, "unknown column"
	}
	if p.Kind == KLike {
		// LIKE compiles only against a dictionary: the pattern is matched
		// once per distinct entry — the same per-code verdict table
		// evalLike builds — and the scan degenerates to a kDict code
		// lookup. Row-at-a-time pattern matching over a plain string
		// column has no typed fast path, so it keeps the generic reason.
		dc, ok := c.(*storage.DictColumn)
		if !ok {
			return kernelLeaf{}, "like pattern"
		}
		dict, pat := dc.Dict(), p.Val.S
		match := make([]bool, len(dict))
		for code, s := range dict {
			match[code] = likeMatch(s, pat)
		}
		return kernelLeaf{kind: kDict, op: EQ, col: p.Col, codes: dc.Codes(), match: match}, ""
	}
	switch cc := c.(type) {
	case *storage.IntColumn:
		switch p.Val.Typ {
		case storage.TInt:
			return kernelLeaf{kind: kI64, op: p.Op, col: p.Col, iv: p.Val.I, i64: cc.V}, ""
		case storage.TFloat:
			return kernelLeaf{kind: kI64AsF64, op: p.Op, col: p.Col, fv: p.Val.AsFloat(), i64: cc.V}, ""
		default:
			return kernelLeaf{}, "cross-type compare"
		}
	case *storage.FloatColumn:
		if !p.Val.IsNumeric() {
			return kernelLeaf{}, "cross-type compare"
		}
		return kernelLeaf{kind: kF64, op: p.Op, col: p.Col, fv: p.Val.AsFloat(), f64: cc.V}, ""
	case *storage.DictColumn:
		return kernelLeaf{kind: kDict, op: p.Op, col: p.Col, codes: cc.Codes(),
			match: dictMatch(cc, p.Op, p.Val)}, ""
	case *storage.RLEIntColumn:
		l := kernelLeaf{kind: kRLE, op: p.Op, col: p.Col, rle: cc, val: p.Val}
		if p.Val.Typ == storage.TInt {
			l.exact, l.iv = true, p.Val.I
		}
		return l, ""
	default:
		return kernelLeaf{}, "string column"
	}
}

// dictMatch evaluates op-against-val once per dictionary entry. Boxed
// Compare gives the same cross-type ordering as the generic row path.
func dictMatch(c *storage.DictColumn, op Op, val storage.Value) []bool {
	dict := c.Dict()
	match := make([]bool, len(dict))
	for code, s := range dict {
		match[code] = op.apply(storage.String_(s).Compare(val))
	}
	return match
}

// rleVerdict evaluates one run value against the constant with the same
// semantics as the IntColumn paths: exact int64 comparison for INT
// constants, boxed Compare otherwise.
func rleVerdict(op Op, x int64, val storage.Value) bool {
	if val.Typ == storage.TInt {
		return intVerdict(op, x, val.I)
	}
	return op.apply(storage.Int(x).Compare(val))
}

// intVerdict is the exact int64 comparison used by the IntColumn fast path.
func intVerdict(op Op, x, v int64) bool {
	switch op {
	case LT:
		return x < v
	case LE:
		return x <= v
	case GT:
		return x > v
	case GE:
		return x >= v
	case EQ:
		return x == v
	default:
		return x != v
	}
}

// Run appends to sel the positions in [lo, hi) that satisfy the kernel, in
// ascending order, and returns the extended slice. sel is typically a
// pooled buffer sliced to length zero; Run never reads its prior contents.
func (k *Kernel) Run(lo, hi int, sel []int) []int {
	if hi > k.n {
		hi = k.n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return sel
	}
	if len(k.leaves) == 0 {
		for i := lo; i < hi; i++ {
			sel = append(sel, i)
		}
		return sel
	}
	base := len(sel)
	sel = k.leaves[0].scan(sel, lo, hi)
	for i := 1; i < len(k.leaves); i++ {
		kept := k.leaves[i].refine(sel[base:])
		sel = sel[:base+len(kept)]
	}
	return sel
}

// scan appends the matching positions of [lo, hi) to sel. The typed kinds
// run branch-free: every position is written into a pre-sized window of the
// buffer and the write cursor advances by the comparison's 0/1 result, so
// the loop's cost does not depend on how predictable the selectivity is.
func (l *kernelLeaf) scan(sel []int, lo, hi int) []int {
	need := len(sel) + (hi - lo)
	if cap(sel) < need {
		grown := make([]int, len(sel), need)
		copy(grown, sel)
		sel = grown
	}
	if l.kind == kRLE {
		// Runs are accepted or rejected whole; the inner fill is a straight
		// index write, no per-row verdict.
		l.rle.ForEachRun(lo, hi, func(x int64, rlo, rhi int) {
			if l.runVerdict(x) {
				for i := rlo; i < rhi; i++ {
					sel = append(sel, i)
				}
			}
		})
		return sel
	}
	buf := sel[len(sel):need]
	k := 0
	switch l.kind {
	case kI64:
		v, s := l.iv, l.i64[lo:hi]
		switch l.op {
		case LT:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(x < v)
			}
		case LE:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(x <= v)
			}
		case GT:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(x > v)
			}
		case GE:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(x >= v)
			}
		case EQ:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(x == v)
			}
		case NE:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(x != v)
			}
		}
	case kI64Range:
		lov, hiv, s := l.iv, l.iv2, l.i64[lo:hi]
		for i, x := range s {
			buf[k] = lo + i
			k += b2i(x >= lov) & b2i(x <= hiv)
		}
	case kI64AsF64:
		// Three-way float semantics (see kI64AsF64 doc): LE is "not greater",
		// GE "not less", EQ "neither" — so a NaN constant satisfies LE/GE/EQ
		// for every row, exactly like the boxed path.
		v, s := l.fv, l.i64[lo:hi]
		switch l.op {
		case LT:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(float64(x) < v)
			}
		case LE:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(!(float64(x) > v))
			}
		case GT:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(float64(x) > v)
			}
		case GE:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(!(float64(x) < v))
			}
		case EQ:
			for i, x := range s {
				buf[k] = lo + i
				f := float64(x)
				k += b2i(!(f < v)) & b2i(!(f > v))
			}
		case NE:
			for i, x := range s {
				buf[k] = lo + i
				f := float64(x)
				k += b2i(f < v) | b2i(f > v)
			}
		}
	case kF64:
		v, s := l.fv, l.f64[lo:hi]
		switch l.op {
		case LT:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(x < v)
			}
		case LE:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(x <= v)
			}
		case GT:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(x > v)
			}
		case GE:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(x >= v)
			}
		case EQ:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(x == v)
			}
		case NE:
			for i, x := range s {
				buf[k] = lo + i
				k += b2i(x != v)
			}
		}
	case kF64Range:
		lov, hiv, s := l.fv, l.fv2, l.f64[lo:hi]
		for i, x := range s {
			buf[k] = lo + i
			k += b2i(x >= lov) & b2i(x <= hiv)
		}
	case kDict:
		match := l.match
		for i, code := range l.codes[lo:hi] {
			buf[k] = lo + i
			k += b2i(match[code])
		}
	}
	return sel[:len(sel)+k]
}

// test reports whether row i satisfies the leaf (random access; used by
// refine for kinds without a specialized loop; kRLE walks runs instead).
func (l *kernelLeaf) test(i int) bool {
	switch l.kind {
	case kI64:
		return intVerdict(l.op, l.i64[i], l.iv)
	case kI64Range:
		x := l.i64[i]
		return x >= l.iv && x <= l.iv2
	case kF64Range:
		x := l.f64[i]
		return x >= l.fv && x <= l.fv2
	case kI64AsF64:
		f, v := float64(l.i64[i]), l.fv
		switch l.op {
		case LT:
			return f < v
		case LE:
			return !(f > v)
		case GT:
			return f > v
		case GE:
			return !(f < v)
		case EQ:
			return !(f < v) && !(f > v)
		default:
			return f < v || f > v
		}
	case kF64:
		x, v := l.f64[i], l.fv
		switch l.op {
		case LT:
			return x < v
		case LE:
			return x <= v
		case GT:
			return x > v
		case GE:
			return x >= v
		case EQ:
			return x == v
		default:
			return x != v
		}
	case kDict:
		return l.match[l.codes[i]]
	default:
		return false
	}
}

// refine keeps only the candidates satisfying the leaf, compacting in
// place: positions are rewritten over the prefix of sel and the write
// cursor advances only on a match, which is safe because writes never pass
// reads. The common kinds use the same branch-free advance as scan.
func (l *kernelLeaf) refine(sel []int) []int {
	if l.kind == kRLE {
		// Candidates ascend, so the cursor's forward walk covers them all;
		// the verdict is recomputed only when the run changes.
		out := sel[:0]
		cur := l.rle.Cursor()
		last, ok := -1, false
		for _, p := range sel {
			x := cur.At(p)
			if r := cur.Run(); r != last {
				ok, last = l.runVerdict(x), r
			}
			if ok {
				out = append(out, p)
			}
		}
		return out
	}
	k := 0
	switch l.kind {
	case kI64:
		v, s := l.iv, l.i64
		switch l.op {
		case LT:
			for _, p := range sel {
				sel[k] = p
				k += b2i(s[p] < v)
			}
		case LE:
			for _, p := range sel {
				sel[k] = p
				k += b2i(s[p] <= v)
			}
		case GT:
			for _, p := range sel {
				sel[k] = p
				k += b2i(s[p] > v)
			}
		case GE:
			for _, p := range sel {
				sel[k] = p
				k += b2i(s[p] >= v)
			}
		case EQ:
			for _, p := range sel {
				sel[k] = p
				k += b2i(s[p] == v)
			}
		case NE:
			for _, p := range sel {
				sel[k] = p
				k += b2i(s[p] != v)
			}
		}
	case kI64Range:
		lov, hiv, s := l.iv, l.iv2, l.i64
		for _, p := range sel {
			sel[k] = p
			x := s[p]
			k += b2i(x >= lov) & b2i(x <= hiv)
		}
	case kF64Range:
		lov, hiv, s := l.fv, l.fv2, l.f64
		for _, p := range sel {
			sel[k] = p
			x := s[p]
			k += b2i(x >= lov) & b2i(x <= hiv)
		}
	case kDict:
		match, codes := l.match, l.codes
		for _, p := range sel {
			sel[k] = p
			k += b2i(match[codes[p]])
		}
	default:
		for _, p := range sel {
			sel[k] = p
			k += b2i(l.test(p))
		}
	}
	return sel[:k]
}

// b2i converts a bool to 0/1 without a branch: the compiler materializes a
// comparison result as a 0/1 byte (SETcc on amd64), and reading that byte
// directly keeps the selection loops branch-free at any selectivity — a
// mid-selectivity predicate would otherwise pay a misprediction every few
// rows. The representation (false=0, true=1, one byte) is what the gc and
// gccgo runtimes use and what the reflect package relies on.
func b2i(b bool) int {
	return int(*(*uint8)(unsafe.Pointer(&b)))
}
