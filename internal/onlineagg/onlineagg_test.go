package onlineagg

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dex/internal/aqp"
	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
)

func mkData(tb testing.TB, n int, seed int64) *storage.Table {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	gv := make([]string, n)
	xv := make([]float64, n)
	for i := range gv {
		gv[i] = string(rune('a' + rng.Intn(4)))
		xv[i] = 100 + rng.NormFloat64()*15
	}
	t, err := storage.FromColumns("d", storage.Schema{
		{Name: "g", Type: storage.TString},
		{Name: "x", Type: storage.TFloat},
	}, []storage.Column{storage.NewStringColumn(gv), storage.NewFloatColumn(xv)})
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

func TestConvergesToExact(t *testing.T) {
	tbl := mkData(t, 5000, 1)
	for _, agg := range []exec.AggFunc{exec.AggSum, exec.AggCount, exec.AggAvg, exec.AggMin, exec.AggMax} {
		q := aqp.Query{Agg: agg, Col: "x", GroupBy: "g"}
		r, err := New(tbl, q, 42)
		if err != nil {
			t.Fatal(err)
		}
		var last []aqp.GroupEstimate
		for !r.Done() {
			last, err = r.Step(1000)
			if err != nil {
				t.Fatal(err)
			}
		}
		truth, err := aqp.Exact(tbl, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(last) != len(truth) {
			t.Fatalf("%v: groups %d vs %d", agg, len(last), len(truth))
		}
		for i := range truth {
			if last[i].Group.S != truth[i].Group.S {
				t.Fatalf("%v: group order", agg)
			}
			if math.Abs(last[i].Est-truth[i].Est) > math.Abs(truth[i].Est)*1e-9+1e-9 {
				t.Errorf("%v(%s): final %v != exact %v", agg, truth[i].Group.S, last[i].Est, truth[i].Est)
			}
			if last[i].CI != 0 {
				t.Errorf("%v: final CI = %v, want 0", agg, last[i].CI)
			}
		}
	}
}

func TestCIShrinks(t *testing.T) {
	tbl := mkData(t, 20000, 2)
	r, err := New(tbl, aqp.Query{Agg: exec.AggAvg, Col: "x"}, 7)
	if err != nil {
		t.Fatal(err)
	}
	var cis []float64
	for i := 0; i < 10; i++ {
		ge, err := r.Step(1000)
		if err != nil {
			t.Fatal(err)
		}
		cis = append(cis, ge[0].CI)
	}
	// CI after 10k rows should be well under half the CI after 1k rows
	// (1/sqrt(10) ~ 0.32).
	if cis[9] > cis[0]*0.5 {
		t.Errorf("CI did not shrink: first=%v last=%v", cis[0], cis[9])
	}
}

func TestEarlyEstimateNearTruth(t *testing.T) {
	tbl := mkData(t, 50000, 3)
	q := aqp.Query{Agg: exec.AggSum, Col: "x"}
	truth, _ := aqp.Exact(tbl, q)
	r, _ := New(tbl, q, 11)
	ge, err := r.Step(2500) // 5% of rows
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(ge[0].Est-truth[0].Est) / truth[0].Est
	if rel > 0.05 {
		t.Errorf("5%% scan rel err = %.4f", rel)
	}
	if ge[0].CI <= 0 {
		t.Error("running CI should be positive")
	}
	// Truth inside the interval (should virtually always hold here).
	if math.Abs(ge[0].Est-truth[0].Est) > 3*ge[0].CI {
		t.Errorf("truth far outside CI: est=%v ci=%v truth=%v", ge[0].Est, ge[0].CI, truth[0].Est)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	tbl := mkData(t, 40000, 4)
	r, _ := New(tbl, aqp.Query{Agg: exec.AggAvg, Col: "x", GroupBy: "g"}, 13)
	snaps, err := r.RunUntil(0.01, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	final := snaps[len(snaps)-1]
	if final.MaxRelCI > 0.01 {
		t.Errorf("stopped at rel CI %.4f", final.MaxRelCI)
	}
	if final.Processed >= tbl.NumRows() {
		t.Errorf("consumed the whole table (%d rows) before hitting 1%% CI", final.Processed)
	}
	// Monotone progress.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Processed <= snaps[i-1].Processed {
			t.Error("snapshots not monotone")
		}
	}
}

func TestWithPredicate(t *testing.T) {
	tbl := mkData(t, 10000, 5)
	q := aqp.Query{Agg: exec.AggCount, Where: expr.Cmp("g", expr.EQ, storage.String_("a"))}
	truth, _ := aqp.Exact(tbl, q)
	r, _ := New(tbl, q, 17)
	var last []aqp.GroupEstimate
	for !r.Done() {
		var err error
		last, err = r.Step(2000)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last[0].Est != truth[0].Est {
		t.Errorf("final count %v != %v", last[0].Est, truth[0].Est)
	}
}

func TestErrors(t *testing.T) {
	tbl := mkData(t, 100, 6)
	if _, err := New(tbl, aqp.Query{Agg: exec.AggSum, Col: "zzz"}, 1); err == nil {
		t.Error("missing column")
	}
	if _, err := New(tbl, aqp.Query{Agg: exec.AggSum, Col: "g"}, 1); err == nil {
		t.Error("sum over text")
	}
	if _, err := New(tbl, aqp.Query{Col: "x"}, 1); err == nil {
		t.Error("missing agg")
	}
	if _, err := New(tbl, aqp.Query{Agg: exec.AggSum, Col: "x",
		Where: expr.Cmp("nope", expr.EQ, storage.Int(1))}, 1); err == nil {
		t.Error("bad predicate column")
	}
	r, _ := New(tbl, aqp.Query{Agg: exec.AggSum, Col: "x"}, 1)
	if _, err := r.Step(0); !errors.Is(err, ErrBadBatch) {
		t.Errorf("batch=0 err = %v", err)
	}
	for !r.Done() {
		if _, err := r.Step(50); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Step(50); !errors.Is(err, ErrDone) {
		t.Errorf("post-done err = %v", err)
	}
}

func TestProgress(t *testing.T) {
	tbl := mkData(t, 100, 7)
	r, _ := New(tbl, aqp.Query{Agg: exec.AggCount}, 1)
	if r.Progress() != 0 {
		t.Error("fresh progress")
	}
	if _, err := r.Step(25); err != nil {
		t.Fatal(err)
	}
	if r.Progress() != 0.25 || r.Processed() != 25 {
		t.Errorf("progress = %v", r.Progress())
	}
}

// mkSkewedGroups builds data where group "rare" is 1% of rows.
func mkSkewedGroups(tb testing.TB, n int, seed int64) *storage.Table {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	gv := make([]string, n)
	xv := make([]float64, n)
	for i := range gv {
		if rng.Float64() < 0.01 {
			gv[i] = "rare"
			xv[i] = 500 + rng.NormFloat64()*20
		} else {
			gv[i] = "big"
			xv[i] = 100 + rng.NormFloat64()*15
		}
	}
	t, err := storage.FromColumns("d", storage.Schema{
		{Name: "g", Type: storage.TString},
		{Name: "x", Type: storage.TFloat},
	}, []storage.Column{storage.NewStringColumn(gv), storage.NewFloatColumn(xv)})
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

func TestStridedConvergesToExact(t *testing.T) {
	tbl := mkSkewedGroups(t, 20000, 11)
	for _, agg := range []exec.AggFunc{exec.AggSum, exec.AggCount, exec.AggAvg} {
		q := aqp.Query{Agg: agg, Col: "x", GroupBy: "g"}
		r, err := NewStrided(tbl, q, 12)
		if err != nil {
			t.Fatal(err)
		}
		var last []aqp.GroupEstimate
		for !r.Done() {
			last, err = r.Step(5000)
			if err != nil {
				t.Fatal(err)
			}
		}
		truth, _ := aqp.Exact(tbl, q)
		if len(last) != len(truth) {
			t.Fatalf("%v groups %d vs %d", agg, len(last), len(truth))
		}
		for i := range truth {
			if math.Abs(last[i].Est-truth[i].Est) > math.Abs(truth[i].Est)*1e-9+1e-9 {
				t.Errorf("%v(%s) final %v != exact %v", agg, truth[i].Group.S, last[i].Est, truth[i].Est)
			}
			if last[i].CI != 0 {
				t.Errorf("%v final CI = %v", agg, last[i].CI)
			}
		}
	}
}

func TestStridingEqualizesGroupConvergence(t *testing.T) {
	tbl := mkSkewedGroups(t, 50000, 13)
	q := aqp.Query{Agg: exec.AggAvg, Col: "x", GroupBy: "g"}
	relCI := func(ests []aqp.GroupEstimate, group string) float64 {
		for _, g := range ests {
			if g.Group.S == group {
				return g.RelCI()
			}
		}
		return math.Inf(1)
	}
	// Plain runner after 5% of rows: the rare group saw only ~25 samples.
	plain, err := New(tbl, q, 14)
	if err != nil {
		t.Fatal(err)
	}
	pEst, err := plain.Step(2500)
	if err != nil {
		t.Fatal(err)
	}
	// Strided runner after the same budget: rare group saw ~1250 samples.
	strided, err := NewStrided(tbl, q, 14)
	if err != nil {
		t.Fatal(err)
	}
	sEst, err := strided.Step(2500)
	if err != nil {
		t.Fatal(err)
	}
	pr, sr := relCI(pEst, "rare"), relCI(sEst, "rare")
	if sr >= pr {
		t.Errorf("striding rare-group rel CI %.5f >= plain %.5f", sr, pr)
	}
	// And at least ~3x tighter (sqrt(1250/25) ≈ 7, allow slack).
	if sr > pr/3 {
		t.Errorf("striding should tighten the rare group much faster: %.5f vs %.5f", sr, pr)
	}
}

func TestStridedErrors(t *testing.T) {
	tbl := mkSkewedGroups(t, 100, 15)
	if _, err := NewStrided(tbl, aqp.Query{Agg: exec.AggSum, Col: "x"}, 1); err == nil {
		t.Error("no GROUP BY should error")
	}
	if _, err := NewStrided(tbl, aqp.Query{Col: "x", GroupBy: "g"}, 1); err == nil {
		t.Error("missing agg should error")
	}
	if _, err := NewStrided(tbl, aqp.Query{Agg: exec.AggSum, Col: "zzz", GroupBy: "g"}, 1); err == nil {
		t.Error("missing column should error")
	}
	r, _ := NewStrided(tbl, aqp.Query{Agg: exec.AggSum, Col: "x", GroupBy: "g"}, 1)
	if _, err := r.Step(0); !errors.Is(err, ErrBadBatch) {
		t.Errorf("batch err = %v", err)
	}
	for !r.Done() {
		if _, err := r.Step(50); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Step(10); !errors.Is(err, ErrDone) {
		t.Errorf("done err = %v", err)
	}
}

func TestStridedWithPredicate(t *testing.T) {
	tbl := mkSkewedGroups(t, 5000, 16)
	q := aqp.Query{Agg: exec.AggCount, Col: "x", GroupBy: "g",
		Where: expr.Cmp("x", expr.GT, storage.Float(90))}
	r, err := NewStrided(tbl, q, 17)
	if err != nil {
		t.Fatal(err)
	}
	var last []aqp.GroupEstimate
	for !r.Done() {
		last, err = r.Step(1000)
		if err != nil {
			t.Fatal(err)
		}
	}
	truth, _ := aqp.Exact(tbl, q)
	for i := range truth {
		if last[i].Est != truth[i].Est {
			t.Errorf("count %s = %v, want %v", truth[i].Group.S, last[i].Est, truth[i].Est)
		}
	}
}
