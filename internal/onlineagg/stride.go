package onlineagg

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dex/internal/aqp"
	"dex/internal/exec"
	"dex/internal/metrics"
	"dex/internal/storage"
)

// StridedRunner is the index-striding variant of online aggregation from
// the CONTROL project [24,25]: instead of one global random permutation —
// under which a rare group receives samples at its population rate and
// converges slowly — rows are consumed round-robin across the groups, so
// every group's estimate tightens at the same pace. Group totals are known
// from the striding pass, so SUM/COUNT estimates are scaled per group.
type StridedRunner struct {
	t      *storage.Table
	q      aqp.Query
	mcol   storage.Column
	groups []*strideGroup
	byKey  map[string]*strideGroup
	order  []string
	cursor int // round-robin position
	done   int // rows consumed
	total  int
}

type strideGroup struct {
	key    storage.Value
	rows   []int // shuffled member rows
	next   int
	stream metrics.Stream // measure values consumed
	sumY   float64        // sum of z over consumed rows
	sumY2  float64
	min    float64
	max    float64
}

// NewStrided prepares a strided runner. The query must have a GROUP BY
// column; predicates are applied during the bucketing pass (rows failing
// the predicate are excluded up front, which the striding pass can afford
// since it reads the grouping column anyway).
func NewStrided(t *storage.Table, q aqp.Query, seed int64) (*StridedRunner, error) {
	if q.Agg == exec.AggNone {
		return nil, fmt.Errorf("onlineagg: missing aggregate")
	}
	if q.GroupBy == "" {
		return nil, fmt.Errorf("onlineagg: striding requires GROUP BY")
	}
	gcol, err := t.ColumnByName(q.GroupBy)
	if err != nil {
		return nil, err
	}
	var mcol storage.Column
	if q.Agg != exec.AggCount {
		c, err := t.ColumnByName(q.Col)
		if err != nil {
			return nil, err
		}
		if c.Type() == storage.TString && (q.Agg == exec.AggSum || q.Agg == exec.AggAvg) {
			return nil, fmt.Errorf("onlineagg: %s over TEXT column %q", q.Agg, q.Col)
		}
		mcol = c
	}
	if q.Where != nil {
		if err := q.Where.Validate(t.Schema()); err != nil {
			return nil, err
		}
	}
	r := &StridedRunner{t: t, q: q, mcol: mcol, byKey: map[string]*strideGroup{}}
	for row := 0; row < t.NumRows(); row++ {
		if q.Where != nil && !q.Where.Matches(t, row) {
			continue
		}
		gv := gcol.Value(row)
		key := gv.String()
		g, ok := r.byKey[key]
		if !ok {
			g = &strideGroup{key: gv, min: math.Inf(1), max: math.Inf(-1)}
			r.byKey[key] = g
			r.order = append(r.order, key)
		}
		g.rows = append(g.rows, row)
		r.total++
	}
	sort.Strings(r.order)
	rng := rand.New(rand.NewSource(seed))
	for _, key := range r.order {
		g := r.byKey[key]
		rng.Shuffle(len(g.rows), func(i, j int) { g.rows[i], g.rows[j] = g.rows[j], g.rows[i] })
		r.groups = append(r.groups, g)
	}
	return r, nil
}

// Processed returns how many rows have been consumed.
func (r *StridedRunner) Processed() int { return r.done }

// Done reports whether every group is exhausted.
func (r *StridedRunner) Done() bool { return r.done >= r.total }

// Step consumes up to batch rows round-robin across the groups and returns
// the updated estimates.
func (r *StridedRunner) Step(batch int) ([]aqp.GroupEstimate, error) {
	if batch <= 0 {
		return nil, ErrBadBatch
	}
	if r.Done() {
		return nil, ErrDone
	}
	consumed := 0
	for consumed < batch && r.done < r.total {
		g := r.groups[r.cursor%len(r.groups)]
		r.cursor++
		if g.next >= len(g.rows) {
			continue // exhausted group; round-robin skips it
		}
		row := g.rows[g.next]
		g.next++
		r.done++
		consumed++
		x := 0.0
		if r.mcol != nil {
			x = r.mcol.Value(row).AsFloat()
		}
		z := 1.0
		if r.q.Agg == exec.AggSum {
			z = x
		}
		g.sumY += z
		g.sumY2 += z * z
		g.stream.Add(x)
		if x < g.min {
			g.min = x
		}
		if x > g.max {
			g.max = x
		}
	}
	return r.Estimates(), nil
}

// Estimates returns the per-group running estimates. SUM and COUNT scale by
// the group's own size (known from bucketing): est = (N_g/m_g)·sum_g, so
// striding's distorted prefix proportions cannot bias the answers.
func (r *StridedRunner) Estimates() []aqp.GroupEstimate {
	out := make([]aqp.GroupEstimate, 0, len(r.groups))
	for _, g := range r.groups {
		Ng := float64(len(g.rows))
		mg := float64(g.next)
		done := g.next >= len(g.rows)
		ge := aqp.GroupEstimate{Group: g.key, N: g.next}
		switch r.q.Agg {
		case exec.AggCount, exec.AggSum:
			scale := 1.0
			if mg > 0 {
				scale = Ng / mg
			}
			ge.Est = scale * g.sumY
			if !done && mg > 1 {
				s2 := (Ng*Ng*g.sumY2 - (Ng*g.sumY)*(Ng*g.sumY)/mg) / (mg - 1)
				ge.CI = metrics.Z95 * math.Sqrt(math.Max(s2, 0)/mg)
			}
		case exec.AggAvg:
			ge.Est = g.stream.Mean()
			if !done {
				ge.CI = g.stream.MeanCI(metrics.Z95)
			}
		case exec.AggMin:
			ge.Est = g.min
			if !done {
				ge.CI = math.Inf(1)
			}
		case exec.AggMax:
			ge.Est = g.max
			if !done {
				ge.CI = math.Inf(1)
			}
		}
		out = append(out, ge)
	}
	return out
}
