// Package onlineagg implements online aggregation in the style of the
// CONTROL project [24,25]: the engine processes the table in random order
// and continuously reports running estimates with shrinking confidence
// intervals, so an exploring user can watch an answer converge and stop as
// soon as it is good enough — long before the full scan would finish.
package onlineagg

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dex/internal/aqp"
	"dex/internal/exec"
	"dex/internal/metrics"
	"dex/internal/storage"
)

// Package-level sentinel errors.
var (
	ErrDone     = errors.New("onlineagg: all rows processed")
	ErrBadBatch = errors.New("onlineagg: batch must be positive")
)

// Runner incrementally evaluates one aggregate query over a random
// permutation of the table. Each Step consumes a batch of rows in O(batch)
// and the current estimates are available at any time.
type Runner struct {
	t     *storage.Table
	q     aqp.Query
	perm  []int
	pos   int
	mcol  storage.Column
	gcol  storage.Column
	accs  map[string]*groupAcc
	order []string
}

type groupAcc struct {
	group  storage.Value
	sumY   float64 // sum over processed rows of z_i (zero outside group/pred)
	sumY2  float64
	stream metrics.Stream // measure values inside group (for AVG)
	min    float64
	max    float64
	n      int
}

// New prepares a runner; the permutation is seeded deterministically.
func New(t *storage.Table, q aqp.Query, seed int64) (*Runner, error) {
	if q.Agg == exec.AggNone {
		return nil, fmt.Errorf("onlineagg: missing aggregate")
	}
	r := &Runner{t: t, q: q, accs: map[string]*groupAcc{}}
	if q.Agg != exec.AggCount {
		c, err := t.ColumnByName(q.Col)
		if err != nil {
			return nil, err
		}
		if c.Type() == storage.TString && (q.Agg == exec.AggSum || q.Agg == exec.AggAvg) {
			return nil, fmt.Errorf("onlineagg: %s over TEXT column %q", q.Agg, q.Col)
		}
		r.mcol = c
	}
	if q.GroupBy != "" {
		c, err := t.ColumnByName(q.GroupBy)
		if err != nil {
			return nil, err
		}
		r.gcol = c
	}
	if q.Where != nil {
		if err := q.Where.Validate(t.Schema()); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(seed))
	r.perm = rng.Perm(t.NumRows())
	return r, nil
}

// Processed returns how many rows have been consumed.
func (r *Runner) Processed() int { return r.pos }

// Progress returns the fraction of the table consumed, in [0,1].
func (r *Runner) Progress() float64 {
	if len(r.perm) == 0 {
		return 1
	}
	return float64(r.pos) / float64(len(r.perm))
}

// Done reports whether the scan has consumed every row.
func (r *Runner) Done() bool { return r.pos >= len(r.perm) }

// Step consumes up to batch more rows and returns the updated estimates.
// After the final row the estimates are exact (CIs collapse to 0) and
// further calls return ErrDone.
func (r *Runner) Step(batch int) ([]aqp.GroupEstimate, error) {
	if batch <= 0 {
		return nil, ErrBadBatch
	}
	if r.Done() {
		return nil, ErrDone
	}
	end := r.pos + batch
	if end > len(r.perm) {
		end = len(r.perm)
	}
	for ; r.pos < end; r.pos++ {
		row := r.perm[r.pos]
		if r.q.Where != nil && !r.q.Where.Matches(r.t, row) {
			continue
		}
		key := ""
		var gv storage.Value
		if r.gcol != nil {
			gv = r.gcol.Value(row)
			key = gv.String()
		}
		a, ok := r.accs[key]
		if !ok {
			a = &groupAcc{group: gv, min: math.Inf(1), max: math.Inf(-1)}
			r.accs[key] = a
			r.order = append(r.order, key)
			sort.Strings(r.order)
		}
		x := 0.0
		if r.mcol != nil {
			x = r.mcol.Value(row).AsFloat()
		}
		z := 1.0
		if r.q.Agg == exec.AggSum {
			z = x
		}
		a.sumY += z
		a.sumY2 += z * z
		a.n++
		a.stream.Add(x)
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	return r.Estimates(), nil
}

// Estimates returns the current running estimates. SUM and COUNT scale the
// processed prefix up to the full table (N/m factor) with CLT intervals
// over the per-row draws; AVG reports the running group mean with its own
// interval. When the scan is complete all intervals are zero.
func (r *Runner) Estimates() []aqp.GroupEstimate {
	N := float64(len(r.perm))
	m := float64(r.pos)
	done := r.Done()
	out := make([]aqp.GroupEstimate, 0, len(r.order))
	for _, key := range r.order {
		a := r.accs[key]
		ge := aqp.GroupEstimate{Group: a.group, N: a.n}
		switch r.q.Agg {
		case aqpCount, aqpSum:
			scale := 1.0
			if m > 0 {
				scale = N / m
			}
			ge.Est = scale * a.sumY
			if !done && m > 1 {
				// Variance of per-row draws t_i = N*z_i, zeros included.
				s2 := (N*N*a.sumY2 - (N*a.sumY)*(N*a.sumY)/m) / (m - 1)
				ge.CI = metrics.Z95 * math.Sqrt(math.Max(s2, 0)/m)
			}
		case aqpAvg:
			ge.Est = a.stream.Mean()
			if !done {
				ge.CI = a.stream.MeanCI(metrics.Z95)
			}
		case aqpMin:
			ge.Est = a.min
			if !done {
				ge.CI = math.Inf(1)
			}
		case aqpMax:
			ge.Est = a.max
			if !done {
				ge.CI = math.Inf(1)
			}
		}
		out = append(out, ge)
	}
	return out
}

// Aliases keep the switch above terse.
const (
	aqpCount = exec.AggCount
	aqpSum   = exec.AggSum
	aqpAvg   = exec.AggAvg
	aqpMin   = exec.AggMin
	aqpMax   = exec.AggMax
)

// Snapshot is one point on the convergence curve RunUntil produces.
type Snapshot struct {
	Processed int
	Groups    []aqp.GroupEstimate
	// MaxRelCI is the worst relative interval across groups at this point.
	MaxRelCI float64
}

// RunUntil steps the runner in batches until every group's relative CI is
// at or below target (or the scan completes), returning the full
// convergence trajectory. A target <= 0 runs to completion.
func (r *Runner) RunUntil(target float64, batch int) ([]Snapshot, error) {
	return r.RunUntilCtx(context.Background(), target, batch)
}

// RunUntilCtx is RunUntil under a context, checked between batches: online
// aggregation is the engine's longest-running mode, and a cancelled request
// must stop the scan at the next batch boundary rather than running to its
// CI target. The snapshots accumulated so far are returned with ctx.Err().
func (r *Runner) RunUntilCtx(ctx context.Context, target float64, batch int) ([]Snapshot, error) {
	if batch <= 0 {
		return nil, ErrBadBatch
	}
	var snaps []Snapshot
	for !r.Done() {
		if err := ctx.Err(); err != nil {
			return snaps, err
		}
		ge, err := r.Step(batch)
		if err != nil {
			return snaps, err
		}
		worst := 0.0
		for _, g := range ge {
			rel := g.RelCI()
			if math.IsInf(rel, 1) && g.Est == 0 {
				continue
			}
			if rel > worst {
				worst = rel
			}
		}
		snaps = append(snaps, Snapshot{Processed: r.pos, Groups: ge, MaxRelCI: worst})
		if target > 0 && worst <= target && r.pos > 1 {
			break
		}
	}
	return snaps, nil
}
