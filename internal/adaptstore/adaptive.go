package adaptstore

import "sort"

// AccessKind distinguishes the two access patterns the monitor tracks.
type AccessKind uint8

// Access kinds.
const (
	Scan   AccessKind = iota // full-column scan (analytical)
	Lookup                   // point row access (transactional)
)

// Access describes one executed query for the monitor.
type Access struct {
	Cols []int
	Kind AccessKind
}

// Monitor keeps a sliding window of recent column accesses and computes
// pairwise affinities (how often two columns are requested together).
type Monitor struct {
	window []Access
	cap    int
}

// NewMonitor creates a monitor remembering the last cap accesses.
func NewMonitor(cap int) *Monitor {
	if cap <= 0 {
		cap = 64
	}
	return &Monitor{cap: cap}
}

// Record appends an access, evicting the oldest beyond capacity.
func (m *Monitor) Record(a Access) {
	cols := append([]int(nil), a.Cols...)
	m.window = append(m.window, Access{Cols: cols, Kind: a.Kind})
	if len(m.window) > m.cap {
		m.window = m.window[len(m.window)-m.cap:]
	}
}

// Len returns the number of recorded accesses.
func (m *Monitor) Len() int { return len(m.window) }

// Advise computes a layout for k columns by greedy affinity clustering:
// two column groups are merged while the fraction of recent queries that
// co-access them exceeds tau. With per-column scans this degenerates to the
// columnar layout; with whole-row lookups it converges to the row layout.
func (m *Monitor) Advise(k int, tau float64) Layout {
	if len(m.window) == 0 {
		return ColumnLayout(k)
	}
	// touch[c] = queries touching c; co[c][d] = queries touching both.
	touch := make([]float64, k)
	co := make([][]float64, k)
	for i := range co {
		co[i] = make([]float64, k)
	}
	for _, a := range m.window {
		for _, c := range a.Cols {
			if c < 0 || c >= k {
				continue
			}
			touch[c]++
			for _, d := range a.Cols {
				if d >= 0 && d < k && d != c {
					co[c][d]++
				}
			}
		}
	}
	// Start with singleton groups; greedily merge the best pair while its
	// normalized affinity exceeds tau.
	groups := make([][]int, k)
	for i := range groups {
		groups[i] = []int{i}
	}
	affinity := func(a, b []int) float64 {
		var sum, norm float64
		for _, c := range a {
			for _, d := range b {
				sum += co[c][d]
				if t := touch[c] + touch[d]; t > 0 {
					norm += t / 2
				}
			}
		}
		if norm == 0 {
			return 0
		}
		return sum / norm
	}
	for {
		bi, bj, best := -1, -1, tau
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				if a := affinity(groups[i], groups[j]); a > best {
					bi, bj, best = i, j, a
				}
			}
		}
		if bi < 0 {
			break
		}
		groups[bi] = append(groups[bi], groups[bj]...)
		groups = append(groups[:bj], groups[bj+1:]...)
	}
	for _, g := range groups {
		sort.Ints(g)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	return Layout(groups)
}

// Adaptive wraps a Store with the monitor/advisor loop: every Interval
// queries it recomputes the advised layout and reorganizes when it differs
// from the current one.
type Adaptive struct {
	Store    *Store
	mon      *Monitor
	Interval int
	Tau      float64
	since    int
	reorgs   int
}

// NewAdaptive builds an adaptive store starting from the columnar layout.
func NewAdaptive(cols [][]float64, windowCap, interval int, tau float64) (*Adaptive, error) {
	st, err := New(cols, ColumnLayout(len(cols)))
	if err != nil {
		return nil, err
	}
	if interval <= 0 {
		interval = 32
	}
	if tau <= 0 {
		tau = 0.4
	}
	return &Adaptive{Store: st, mon: NewMonitor(windowCap), Interval: interval, Tau: tau}, nil
}

// Reorganizations returns how many physical reorganizations have happened.
func (a *Adaptive) Reorganizations() int { return a.reorgs }

// ScanSum executes an analytical scan and feeds the adaptation loop.
func (a *Adaptive) ScanSum(cols []int) ([]float64, error) {
	out, err := a.Store.ScanSum(cols)
	if err != nil {
		return nil, err
	}
	a.observe(Access{Cols: cols, Kind: Scan})
	return out, nil
}

// ReadRows executes a point access and feeds the adaptation loop.
func (a *Adaptive) ReadRows(rows, cols []int) ([][]float64, error) {
	out, err := a.Store.ReadRows(rows, cols)
	if err != nil {
		return nil, err
	}
	a.observe(Access{Cols: cols, Kind: Lookup})
	return out, nil
}

func (a *Adaptive) observe(acc Access) {
	a.mon.Record(acc)
	a.since++
	if a.since < a.Interval {
		return
	}
	a.since = 0
	want := a.mon.Advise(a.Store.ncols, a.Tau)
	if !want.Equal(a.Store.Layout()) {
		if err := a.Store.Reorganize(want); err == nil {
			a.reorgs++
		}
	}
}
