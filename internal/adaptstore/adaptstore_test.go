package adaptstore

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkCols(n, k int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, k)
	for c := range cols {
		cols[c] = make([]float64, n)
		for r := range cols[c] {
			cols[c][r] = rng.Float64() * 10
		}
	}
	return cols
}

func TestLayoutValidate(t *testing.T) {
	if err := ColumnLayout(3).Validate(3); err != nil {
		t.Error(err)
	}
	if err := RowLayout(3).Validate(3); err != nil {
		t.Error(err)
	}
	bad := []Layout{
		{{0, 1}},         // missing column 2
		{{0, 1}, {1, 2}}, // repeated
		{{0, 1}, {2, 5}}, // out of range
	}
	for i, l := range bad {
		if err := l.Validate(3); !errors.Is(err, ErrBadLayout) {
			t.Errorf("bad layout %d err = %v", i, err)
		}
	}
}

func TestLayoutEqual(t *testing.T) {
	a := Layout{{0, 2}, {1}}
	b := Layout{{1}, {2, 0}}
	if !a.Equal(b) {
		t.Error("layouts should be equal up to order")
	}
	if a.Equal(Layout{{0}, {1}, {2}}) {
		t.Error("different partitions reported equal")
	}
}

func TestScanSumSameUnderAnyLayout(t *testing.T) {
	cols := mkCols(500, 4, 1)
	want := make([]float64, 4)
	for c := range cols {
		for _, v := range cols[c] {
			want[c] += v
		}
	}
	layouts := []Layout{
		ColumnLayout(4),
		RowLayout(4),
		{{0, 2}, {1, 3}},
		{{3}, {0, 1, 2}},
	}
	for _, l := range layouts {
		s, err := New(cols, l)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.ScanSum([]int{0, 1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		for c := range want {
			if math.Abs(got[c]-want[c]) > 1e-6 {
				t.Errorf("layout %v col %d sum = %v, want %v", l, c, got[c], want[c])
			}
		}
	}
}

func TestReadRows(t *testing.T) {
	cols := mkCols(100, 3, 2)
	s, err := New(cols, Layout{{0, 1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.ReadRows([]int{5, 50}, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != cols[2][5] || rows[0][1] != cols[0][5] {
		t.Errorf("row 5 = %v", rows[0])
	}
	if rows[1][0] != cols[2][50] {
		t.Errorf("row 50 = %v", rows[1])
	}
	if _, err := s.ReadRows([]int{1000}, []int{0}); !errors.Is(err, ErrBadRow) {
		t.Errorf("bad row err = %v", err)
	}
	if _, err := s.ReadRows([]int{0}, []int{9}); !errors.Is(err, ErrBadColumn) {
		t.Errorf("bad col err = %v", err)
	}
}

func TestScanCostDependsOnLayout(t *testing.T) {
	cols := mkCols(2000, 8, 3)
	colStore, _ := New(cols, ColumnLayout(8))
	rowStore, _ := New(cols, RowLayout(8))
	if _, err := colStore.ScanSum([]int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := rowStore.ScanSum([]int{0}); err != nil {
		t.Fatal(err)
	}
	// Columnar touches 1/8 of the slots a row store touches for a
	// single-column scan.
	if colStore.SlotsTouched()*8 != rowStore.SlotsTouched() {
		t.Errorf("touched: col=%d row=%d", colStore.SlotsTouched(), rowStore.SlotsTouched())
	}
}

func TestRowLookupCostDependsOnLayout(t *testing.T) {
	cols := mkCols(2000, 8, 4)
	colStore, _ := New(cols, ColumnLayout(8))
	rowStore, _ := New(cols, RowLayout(8))
	allCols := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if _, err := colStore.ReadRows([]int{42}, allCols); err != nil {
		t.Fatal(err)
	}
	if _, err := rowStore.ReadRows([]int{42}, allCols); err != nil {
		t.Fatal(err)
	}
	// Whole-row fetch touches the same slot count either way here (8), but
	// the columnar store pays 8 group touches vs 1 — proxy: equal slots,
	// and in wall-clock benches the row store wins. Verify slot parity.
	if colStore.SlotsTouched() != rowStore.SlotsTouched() {
		t.Logf("touched: col=%d row=%d", colStore.SlotsTouched(), rowStore.SlotsTouched())
	}
}

func TestReorganizePreservesData(t *testing.T) {
	f := func(seed int64) bool {
		cols := mkCols(200, 5, seed)
		s, err := New(cols, ColumnLayout(5))
		if err != nil {
			return false
		}
		want, _ := s.ScanSum([]int{0, 1, 2, 3, 4})
		layouts := []Layout{RowLayout(5), {{0, 4}, {1, 2}, {3}}, ColumnLayout(5)}
		for _, l := range layouts {
			if err := s.Reorganize(l); err != nil {
				return false
			}
			got, err := s.ScanSum([]int{0, 1, 2, 3, 4})
			if err != nil {
				return false
			}
			for c := range want {
				if math.Abs(got[c]-want[c]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestAdvisorColumnarForScans(t *testing.T) {
	m := NewMonitor(100)
	for i := 0; i < 50; i++ {
		m.Record(Access{Cols: []int{i % 4}, Kind: Scan})
	}
	l := m.Advise(4, 0.4)
	if !l.Equal(ColumnLayout(4)) {
		t.Errorf("advised %v, want columnar", l)
	}
}

func TestAdvisorRowForLookups(t *testing.T) {
	m := NewMonitor(100)
	for i := 0; i < 50; i++ {
		m.Record(Access{Cols: []int{0, 1, 2, 3}, Kind: Lookup})
	}
	l := m.Advise(4, 0.4)
	if !l.Equal(RowLayout(4)) {
		t.Errorf("advised %v, want row", l)
	}
}

func TestAdvisorMixedGroups(t *testing.T) {
	m := NewMonitor(200)
	// Columns 0,1 always together; 2,3 always together; never across.
	for i := 0; i < 60; i++ {
		if i%2 == 0 {
			m.Record(Access{Cols: []int{0, 1}, Kind: Scan})
		} else {
			m.Record(Access{Cols: []int{2, 3}, Kind: Scan})
		}
	}
	l := m.Advise(4, 0.4)
	if !l.Equal(Layout{{0, 1}, {2, 3}}) {
		t.Errorf("advised %v, want [0 1][2 3]", l)
	}
}

func TestAdaptiveFollowsWorkloadShift(t *testing.T) {
	cols := mkCols(1000, 6, 5)
	a, err := NewAdaptive(cols, 64, 16, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: OLTP-ish whole-row lookups -> should become a row store.
	all := []int{0, 1, 2, 3, 4, 5}
	for i := 0; i < 64; i++ {
		if _, err := a.ReadRows([]int{i % 1000}, all); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Store.Layout().Equal(RowLayout(6)) {
		t.Errorf("after OLTP phase layout = %v", a.Store.Layout())
	}
	// Phase 2: analytical single-column scans -> back to columnar.
	for i := 0; i < 128; i++ {
		if _, err := a.ScanSum([]int{i % 6}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Store.Layout().Equal(ColumnLayout(6)) {
		t.Errorf("after OLAP phase layout = %v", a.Store.Layout())
	}
	if a.Reorganizations() < 2 {
		t.Errorf("reorgs = %d, want >= 2", a.Reorganizations())
	}
}

func TestMonitorWindowEviction(t *testing.T) {
	m := NewMonitor(10)
	for i := 0; i < 25; i++ {
		m.Record(Access{Cols: []int{0}})
	}
	if m.Len() != 10 {
		t.Errorf("window len = %d", m.Len())
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New([][]float64{{1, 2}, {1}}, ColumnLayout(2)); !errors.Is(err, ErrBadLayout) {
		t.Errorf("ragged err = %v", err)
	}
	if _, err := New(mkCols(10, 2, 1), Layout{{0}}); !errors.Is(err, ErrBadLayout) {
		t.Errorf("partial layout err = %v", err)
	}
	s, _ := New(mkCols(10, 2, 1), ColumnLayout(2))
	if _, err := s.ScanSum([]int{7}); !errors.Is(err, ErrBadColumn) {
		t.Errorf("scan col err = %v", err)
	}
	if err := s.Reorganize(Layout{{0}}); !errors.Is(err, ErrBadLayout) {
		t.Errorf("reorg err = %v", err)
	}
}
