// Package adaptstore implements adaptive storage layouts in the spirit of
// H2O [9] and the "one size fits all" re-examination [19]: a numeric table
// is physically organized as column groups (from pure columnar — every
// column its own group — to pure row store — one interleaved group), a
// workload monitor tracks which columns queries co-access, and an advisor
// periodically re-partitions the columns so the physical layout follows the
// observed access pattern.
//
// Costs are physical, not simulated: scans stride through the interleaved
// group buffers, so a wide group really does waste memory bandwidth when
// only one of its columns is needed, and row lookups really do benefit from
// locality when all requested columns share a group.
package adaptstore

import (
	"errors"
	"fmt"
	"sort"
)

// Package-level sentinel errors.
var (
	ErrBadLayout = errors.New("adaptstore: layout is not a partition of the columns")
	ErrBadColumn = errors.New("adaptstore: column index out of range")
	ErrBadRow    = errors.New("adaptstore: row index out of range")
)

// Layout partitions column indexes into physical groups.
type Layout [][]int

// ColumnLayout returns the pure columnar layout for k columns.
func ColumnLayout(k int) Layout {
	l := make(Layout, k)
	for i := range l {
		l[i] = []int{i}
	}
	return l
}

// RowLayout returns the pure row-store layout (one group) for k columns.
func RowLayout(k int) Layout {
	g := make([]int, k)
	for i := range g {
		g[i] = i
	}
	return Layout{g}
}

// Validate checks that the layout is a partition of 0..k-1.
func (l Layout) Validate(k int) error {
	seen := make([]bool, k)
	n := 0
	for _, g := range l {
		for _, c := range g {
			if c < 0 || c >= k {
				return fmt.Errorf("column %d: %w", c, ErrBadLayout)
			}
			if seen[c] {
				return fmt.Errorf("column %d repeated: %w", c, ErrBadLayout)
			}
			seen[c] = true
			n++
		}
	}
	if n != k {
		return fmt.Errorf("%d of %d columns covered: %w", n, k, ErrBadLayout)
	}
	return nil
}

// String renders the layout as e.g. "[0 2][1][3]".
func (l Layout) String() string {
	s := ""
	for _, g := range l {
		s += fmt.Sprint(g)
	}
	return s
}

// Equal reports whether two layouts define the same partition
// (group and in-group order insensitive).
func (l Layout) Equal(o Layout) bool {
	return l.canon() == o.canon()
}

func (l Layout) canon() string {
	groups := make([]string, len(l))
	for i, g := range l {
		gg := append([]int(nil), g...)
		sort.Ints(gg)
		groups[i] = fmt.Sprint(gg)
	}
	sort.Strings(groups)
	return fmt.Sprint(groups)
}

// group is one physical column group: an interleaved row-major buffer.
type group struct {
	cols []int // logical column ids, in buffer order
	buf  []float64
}

// Store is a numeric table physically organized by a Layout.
type Store struct {
	nrows   int
	ncols   int
	groups  []group
	where   []int // column id -> group index
	slot    []int // column id -> offset within its group
	touched int64 // float64 slots read since creation
}

// New materializes the store from logical columns under the given layout.
func New(cols [][]float64, layout Layout) (*Store, error) {
	k := len(cols)
	if err := layout.Validate(k); err != nil {
		return nil, err
	}
	n := 0
	if k > 0 {
		n = len(cols[0])
		for _, c := range cols {
			if len(c) != n {
				return nil, fmt.Errorf("ragged columns: %w", ErrBadLayout)
			}
		}
	}
	s := &Store{nrows: n, ncols: k, where: make([]int, k), slot: make([]int, k)}
	for gi, gcols := range layout {
		g := group{cols: append([]int(nil), gcols...), buf: make([]float64, n*len(gcols))}
		w := len(gcols)
		for off, c := range gcols {
			s.where[c] = gi
			s.slot[c] = off
			src := cols[c]
			for r := 0; r < n; r++ {
				g.buf[r*w+off] = src[r]
			}
		}
		s.groups = append(s.groups, g)
	}
	return s, nil
}

// NumRows returns the row count.
func (s *Store) NumRows() int { return s.nrows }

// Layout returns the current physical layout.
func (s *Store) Layout() Layout {
	l := make(Layout, len(s.groups))
	for i, g := range s.groups {
		l[i] = append([]int(nil), g.cols...)
	}
	return l
}

// SlotsTouched returns how many float64 slots have been read so far; the
// experiments report it as the physical-work proxy alongside wall time.
func (s *Store) SlotsTouched() int64 { return s.touched }

// ScanSum scans the requested columns end to end and returns each column's
// sum. Physically it walks each group containing a requested column with
// the group's full stride — the columnar-vs-row bandwidth effect.
func (s *Store) ScanSum(cols []int) ([]float64, error) {
	out := make([]float64, len(cols))
	// Group the requested columns by physical group, so each group buffer
	// is walked once regardless of how many of its columns are needed.
	type want struct {
		outIdx int
		off    int
	}
	byGroup := map[int][]want{}
	for i, c := range cols {
		if c < 0 || c >= s.ncols {
			return nil, fmt.Errorf("column %d: %w", c, ErrBadColumn)
		}
		gi := s.where[c]
		byGroup[gi] = append(byGroup[gi], want{outIdx: i, off: s.slot[c]})
	}
	for gi, wants := range byGroup {
		g := &s.groups[gi]
		w := len(g.cols)
		s.touched += int64(len(g.buf))
		for r := 0; r < s.nrows; r++ {
			base := r * w
			for _, wa := range wants {
				out[wa.outIdx] += g.buf[base+wa.off]
			}
		}
	}
	return out, nil
}

// ReadRows fetches the requested columns for the given rows (point access,
// the OLTP-ish pattern). Each distinct (row, group) pair touches that
// group's full row stride, modelling the cache-line granularity of row
// access.
func (s *Store) ReadRows(rows []int, cols []int) ([][]float64, error) {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		if r < 0 || r >= s.nrows {
			return nil, fmt.Errorf("row %d: %w", r, ErrBadRow)
		}
		vals := make([]float64, len(cols))
		seenGroup := map[int]bool{}
		for j, c := range cols {
			if c < 0 || c >= s.ncols {
				return nil, fmt.Errorf("column %d: %w", c, ErrBadColumn)
			}
			gi := s.where[c]
			g := &s.groups[gi]
			w := len(g.cols)
			if !seenGroup[gi] {
				seenGroup[gi] = true
				s.touched += int64(w) // one stride per touched group per row
				// Touch the whole stride, as a real row fetch would.
				base := r * w
				var sink float64
				for p := 0; p < w; p++ {
					sink += g.buf[base+p]
				}
				_ = sink
			}
			vals[j] = g.buf[r*w+s.slot[c]]
		}
		out[i] = vals
	}
	return out, nil
}

// Reorganize rewrites the store into the new layout (paying the full data
// movement cost, which the adaptive experiments account for).
func (s *Store) Reorganize(layout Layout) error {
	if err := layout.Validate(s.ncols); err != nil {
		return err
	}
	cols := make([][]float64, s.ncols)
	for c := 0; c < s.ncols; c++ {
		g := &s.groups[s.where[c]]
		w := len(g.cols)
		off := s.slot[c]
		col := make([]float64, s.nrows)
		for r := 0; r < s.nrows; r++ {
			col[r] = g.buf[r*w+off]
		}
		cols[c] = col
	}
	s.touched += int64(s.nrows * s.ncols * 2) // read + write
	ns, err := New(cols, layout)
	if err != nil {
		return err
	}
	s.groups, s.where, s.slot = ns.groups, ns.where, ns.slot
	return nil
}
