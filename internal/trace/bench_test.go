package trace

import (
	"context"
	"testing"
)

// The numbers from these benchmarks are quoted in DESIGN.md's
// Observability section: they are the whole per-stage cost a query pays
// when tracing is off, mirroring internal/fault's unarmed-Hit benchmark.

// BenchmarkFromContextOff measures the single hot-path check on an
// untraced request: one context.Value walk returning nil.
func BenchmarkFromContextOff(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sp := FromContext(ctx); sp != nil {
			b.Fatal("traced?")
		}
	}
}

// BenchmarkNilSpanOps measures a full instrumentation sequence
// (Child + attrs + End) against a nil span — what every operator stage
// costs when tracing is off.
func BenchmarkNilSpanOps(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := sp.Child("scan")
		c.SetInt("rows", int64(i))
		c.End()
	}
}

// BenchmarkSpanOn measures the armed cost of one child span with two
// attributes — what a traced request pays per stage.
func BenchmarkSpanOn(b *testing.B) {
	_, root := Start(context.Background(), "q")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := root.Child("scan")
		c.SetInt("rows", int64(i))
		c.SetStr("col", "price")
		c.End()
	}
}
