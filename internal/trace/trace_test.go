package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var sp *Span
	c := sp.Child("x")
	if c != nil {
		t.Fatalf("nil span Child = %v, want nil", c)
	}
	sp.SetInt("rows", 1)
	sp.SetStr("mode", "exact")
	sp.SetBool("hit", true)
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span Duration = %v, want 0", d)
	}
	if j := sp.JSON(); j != nil {
		t.Fatalf("nil span JSON = %v, want nil", j)
	}
}

func TestFromContextOff(t *testing.T) {
	if sp := FromContext(context.Background()); sp != nil {
		t.Fatalf("FromContext on untraced ctx = %v, want nil", sp)
	}
	// With(nil) must return the identical context, not an allocation.
	ctx := context.Background()
	if got := With(ctx, nil); got != ctx {
		t.Fatalf("With(ctx, nil) returned a new context")
	}
}

func TestSpanTree(t *testing.T) {
	ctx, root := Start(context.Background(), "query")
	if FromContext(ctx) != root {
		t.Fatalf("FromContext did not return the started span")
	}
	scan := root.Child("scan")
	scan.SetInt("rows_in", 100)
	scan.SetInt("rows_in", 200) // overwrite, not duplicate
	scan.SetStr("col", "price")
	time.Sleep(2 * time.Millisecond)
	scan.End()
	agg := root.Child("aggregate")
	agg.SetBool("parallel", true)
	agg.End()
	root.End()
	root.End() // idempotent

	j := root.JSON()
	if j.Name != "query" || len(j.Children) != 2 {
		t.Fatalf("root JSON = %+v, want query with 2 children", j)
	}
	sj := j.Children[0]
	if sj.Name != "scan" || sj.Attrs["rows_in"] != int64(200) || sj.Attrs["col"] != "price" {
		t.Fatalf("scan JSON = %+v", sj)
	}
	if sj.DurationMS < 1 {
		t.Fatalf("scan duration %v ms, want >= 1ms after 2ms sleep", sj.DurationMS)
	}
	if sj.StartMS < 0 || j.Children[1].StartMS < sj.StartMS {
		t.Fatalf("child offsets not monotone: %v then %v", sj.StartMS, j.Children[1].StartMS)
	}
	if j.DurationMS < sj.DurationMS {
		t.Fatalf("root duration %v < child duration %v", j.DurationMS, sj.DurationMS)
	}
}

func TestEndIdempotent(t *testing.T) {
	_, sp := Start(context.Background(), "q")
	sp.End()
	d := sp.Duration()
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if got := sp.Duration(); got != d {
		t.Fatalf("second End moved the end time: %v -> %v", d, got)
	}
}

func TestUnfinishedSpanJSON(t *testing.T) {
	_, sp := Start(context.Background(), "q")
	c := sp.Child("hung")
	time.Sleep(time.Millisecond)
	j := sp.JSON() // neither span ended
	if j.DurationMS <= 0 || j.Children[0].DurationMS <= 0 {
		t.Fatalf("unfinished spans should render elapsed-so-far, got %+v", j)
	}
	c.End()
	sp.End()
}

func TestConcurrentChildren(t *testing.T) {
	_, root := Start(context.Background(), "q")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.Child(fmt.Sprintf("w%d", w))
				c.SetInt("i", int64(i))
				c.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got := len(root.JSON().Children); got != 8*50 {
		t.Fatalf("got %d children, want %d", got, 8*50)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 {
		t.Fatalf("fresh ring Len = %d", r.Len())
	}
	for i := 1; i <= 5; i++ {
		r.Add(Entry{SQL: fmt.Sprintf("q%d", i)})
	}
	if r.Len() != 3 {
		t.Fatalf("ring Len = %d, want 3", r.Len())
	}
	got := r.Snapshot()
	want := []string{"q5", "q4", "q3"} // newest first, oldest evicted
	for i, e := range got {
		if e.SQL != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q (all: %+v)", i, e.SQL, want[i], got)
		}
	}
}

func TestRingMinCapacity(t *testing.T) {
	r := NewRing(0)
	r.Add(Entry{SQL: "a"})
	r.Add(Entry{SQL: "b"})
	if r.Len() != 1 || r.Snapshot()[0].SQL != "b" {
		t.Fatalf("capacity-clamped ring: len=%d snap=%+v", r.Len(), r.Snapshot())
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(Entry{ElapsedMS: float64(i)})
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Fatalf("ring Len = %d, want 8", r.Len())
	}
}
