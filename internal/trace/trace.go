// Package trace is a stdlib-only span tracer for per-query observability.
//
// A trace is a tree of timed spans carried through the engine in a
// context.Context: the server starts a root span per traced request, and
// every layer below (core, exec, par, storage seams) attaches stage
// children — parse, plan, scan, crack, aggregate, cache lookup — with
// duration and small scalar attributes (rows scanned, morsel counts,
// cache/degraded outcomes).
//
// The design rule, borrowed from internal/fault's unarmed-cost
// discipline, is that tracing OFF must cost almost nothing on the hot
// path: FromContext on an untraced context returns nil, and every Span
// method is safe (and a no-op) on a nil receiver, so instrumented code
// never branches on "is tracing on" — it just calls Child/Set*/End and
// the nil receiver makes them free. The per-query cost when off is one
// context.Value lookup plus a handful of nil-check method calls; see
// bench_test.go for the measured numbers quoted in DESIGN.md.
//
// Spans are extracted from the context once per operator stage, never
// per morsel or per row.
package trace

import (
	"context"
	"sync"
	"time"
)

// Span is one timed stage of a query. All methods are safe on a nil
// *Span (they do nothing), so callers never guard instrumentation with
// an "is tracing enabled" branch. A Span may be mutated from the
// goroutine that created it while concurrent children are being added
// by workers; the internal mutex makes Child/Set*/End goroutine-safe.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []attr
	children []*Span
}

type attr struct {
	key string
	val any
}

type ctxKey struct{}

// Start begins a new root span and returns a context carrying it.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{name: name, start: time.Now()}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// FromContext returns the span carried by ctx, or nil when the request
// is not traced. This is the single hot-path check: one context.Value
// walk, no allocation.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// With returns a context carrying sp. When sp is nil it returns ctx
// unchanged, so untraced requests never pay the context allocation.
func With(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// Child starts a sub-span under s. Nil-safe: a nil parent yields a nil
// child, and the whole instrumentation chain below it stays free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End marks the span finished. Idempotent: only the first call sets the
// end time, so a deferred safety End after an explicit one is harmless.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetInt attaches an integer attribute (rows, morsels, workers...).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.set(key, v)
}

// SetStr attaches a string attribute (mode, column, table...).
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.set(key, v)
}

// SetBool attaches a boolean attribute (hit, degraded, built...).
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.set(key, v)
}

func (s *Span) set(key string, v any) {
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].val = v
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, attr{key, v})
	s.mu.Unlock()
}

// Duration returns the span's elapsed time; for an unfinished span it is
// the time elapsed so far. Zero on a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// SpanJSON is the wire form of a span tree: offsets are relative to the
// root span's start so a client can lay stages on one timeline without
// caring about absolute clocks.
type SpanJSON struct {
	Name       string         `json:"name"`
	StartMS    float64        `json:"start_ms"` // offset from root start
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanJSON    `json:"children,omitempty"`
}

// JSON snapshots the span tree rooted at s. Unfinished spans are
// rendered as if they ended now. Nil on a nil span.
func (s *Span) JSON() *SpanJSON {
	if s == nil {
		return nil
	}
	return s.json(s.start, time.Now())
}

func (s *Span) json(rootStart, now time.Time) *SpanJSON {
	s.mu.Lock()
	end := s.end
	attrs := s.attrs
	children := s.children
	s.mu.Unlock()
	if end.IsZero() {
		end = now
	}
	out := &SpanJSON{
		Name:       s.name,
		StartMS:    durMS(s.start.Sub(rootStart)),
		DurationMS: durMS(end.Sub(s.start)),
	}
	if len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.key] = a.val
		}
	}
	for _, c := range children {
		out.Children = append(out.Children, c.json(rootStart, now))
	}
	return out
}

func durMS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}
