package trace

import (
	"sync"
	"time"
)

// Entry is one captured slow query: identifying metadata plus the full
// span tree, as served by /admin/slow.
type Entry struct {
	Time      time.Time `json:"time"`
	Session   string    `json:"session,omitempty"`
	SQL       string    `json:"sql,omitempty"`
	Mode      string    `json:"mode,omitempty"`
	Outcome   string    `json:"outcome,omitempty"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Trace     *SpanJSON `json:"trace,omitempty"`
}

// Ring is a bounded, mutex-guarded buffer of the most recent slow
// queries. Memory is bounded by the capacity regardless of how many
// queries exceed the threshold; old entries are overwritten in FIFO
// order.
type Ring struct {
	mu   sync.Mutex
	buf  []Entry
	next int
	full bool
}

// NewRing returns a ring keeping the last n entries (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Entry, n)}
}

// Add records an entry, evicting the oldest when full.
func (r *Ring) Add(e Entry) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len reports how many entries are currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Snapshot returns the held entries, newest first.
func (r *Ring) Snapshot() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]Entry, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
